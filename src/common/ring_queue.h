// A lock-free, fixed-size, FIFO queue (paper §2.4: "The flushing queue is a
// lock-free, fixed-size, FIFO queue").
//
// Core: a Vyukov-style bounded MPMC ring with per-cell sequence numbers —
// TryPush/TryPop never take a lock.  On top, BlockingRingQueue adds
// semaphore-based blocking so that:
//   * a producer rank blocks when the queue is full (the paper's
//     back-pressure: "the MPI rank is blocked on the put operation until the
//     queue is available"), and
//   * the consumer (compaction thread / message dispatcher) sleeps while the
//     queue is empty instead of spinning.
//
// Snapshot() exposes the live contents for readers that must search the
// queued immutable MemTables newest-first (paper §2.6) — that path is served
// by the MemTable registry in core/, not by the queue itself, so the queue
// stays strictly FIFO.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <optional>
#include <memory>
#include <semaphore>
#include <vector>

namespace papyrus {

template <typename T>
class RingQueue {
 public:
  // Capacity is rounded up to a power of two; must be >= 1.
  explicit RingQueue(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    cells_ = std::make_unique<Cell[]>(cap);
    mask_ = cap - 1;
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  RingQueue(const RingQueue&) = delete;
  RingQueue& operator=(const RingQueue&) = delete;

  size_t capacity() const { return mask_ + 1; }

  // Lock-free push; returns false when full.
  bool TryPush(T item) {
    Cell* cell;
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      size_t seq = cell->seq.load(std::memory_order_acquire);
      intptr_t diff = static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(item);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  // Lock-free pop; returns nullopt when empty.
  std::optional<T> TryPop() {
    Cell* cell;
    size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      size_t seq = cell->seq.load(std::memory_order_acquire);
      intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return std::nullopt;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    T out = std::move(cell->value);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return out;
  }

  // Approximate occupancy (racy, for metrics only).
  size_t ApproxSize() const {
    size_t t = tail_.load(std::memory_order_relaxed);
    size_t h = head_.load(std::memory_order_relaxed);
    return t >= h ? t - h : 0;
  }

 private:
  struct Cell {
    std::atomic<size_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  size_t mask_ = 0;
  // Pad to separate producer/consumer cursors onto distinct cache lines.
  alignas(64) std::atomic<size_t> tail_{0};
  alignas(64) std::atomic<size_t> head_{0};
};

// RingQueue plus blocking semantics via counting semaphores.
template <typename T>
class BlockingRingQueue {
 public:
  explicit BlockingRingQueue(size_t capacity)
      : ring_(capacity),
        slots_(static_cast<ptrdiff_t>(ring_.capacity())),
        items_(0) {}

  size_t capacity() const { return ring_.capacity(); }

  // Blocks while the queue is full (paper's producer back-pressure).
  void Push(T item) {
    slots_.acquire();
    bool ok = ring_.TryPush(std::move(item));
    assert(ok);
    (void)ok;  // the acquired slot guarantees ring capacity
    items_.release();
  }

  bool TryPush(T item) {
    if (!slots_.try_acquire()) return false;
    bool ok = ring_.TryPush(std::move(item));
    assert(ok);
    (void)ok;  // the acquired slot guarantees ring capacity
    items_.release();
    return true;
  }

  // Blocks while empty.
  T Pop() {
    items_.acquire();
    auto v = ring_.TryPop();
    assert(v.has_value());
    slots_.release();
    return std::move(*v);
  }

  std::optional<T> TryPop() {
    if (!items_.try_acquire()) return std::nullopt;
    auto v = ring_.TryPop();
    assert(v.has_value());
    slots_.release();
    return v;
  }

  // Blocks up to rel_time; nullopt on timeout.  Consumers use this so they
  // can periodically re-check a shutdown flag.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> rel_time) {
    if (!items_.try_acquire_for(rel_time)) return std::nullopt;
    auto v = ring_.TryPop();
    assert(v.has_value());
    slots_.release();
    return v;
  }

  size_t ApproxSize() const { return ring_.ApproxSize(); }

 private:
  RingQueue<T> ring_;
  std::counting_semaphore<> slots_;
  std::counting_semaphore<> items_;
};

}  // namespace papyrus
