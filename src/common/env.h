// Environment-variable configuration.
//
// The paper's artifact appendix drives experiments through PAPYRUSKV_*
// environment variables (PAPYRUSKV_REPOSITORY, PAPYRUSKV_GROUP_SIZE,
// PAPYRUSKV_CONSISTENCY, PAPYRUSKV_BIN_SEARCH, PAPYRUSKV_CACHE_REMOTE,
// PAPYRUSKV_FORCE_REDISTRIBUTE, ...).  EnvConfig reads them once and layers
// them under programmatic options, so the bench scripts in bench/ can be
// written in the artifact's style.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace papyrus {

// Typed getters; nullopt when the variable is unset or unparsable.
std::optional<std::string> EnvString(const char* name);
std::optional<int64_t> EnvInt(const char* name);
std::optional<bool> EnvBool(const char* name);

// Snapshot of every PAPYRUSKV_* variable the artifact appendix uses.
struct EnvConfig {
  std::string repository;        // PAPYRUSKV_REPOSITORY
  std::optional<int64_t> group_size;        // PAPYRUSKV_GROUP_SIZE
  std::optional<int64_t> consistency;       // PAPYRUSKV_CONSISTENCY (1=seq,2=rel)
  std::optional<int64_t> bin_search;        // PAPYRUSKV_BIN_SEARCH (1=off? artifact: 1/2)
  std::optional<bool> cache_remote;         // PAPYRUSKV_CACHE_REMOTE
  std::optional<bool> force_redistribute;   // PAPYRUSKV_FORCE_REDISTRIBUTE
  std::optional<int64_t> memtable_bytes;    // PAPYRUSKV_MEMTABLE_SIZE
  std::optional<std::string> lustre_path;   // PAPYRUSKV_LUSTRE

  static EnvConfig Load();
};

}  // namespace papyrus
