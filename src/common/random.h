// Deterministic RNG and workload key/value generators.
//
// The paper's microbenchmarks use 16-byte random string keys "containing
// letters (a-Z) and digits (0-9) ... generated in a uniformly distributed
// manner" (§5.2).  RandomKey reproduces that alphabet.  The generator is a
// SplitMix64/xoshiro combination: fast, seedable, reproducible across runs
// so tests and benches are stable.
#pragma once

#include <cstdint>
#include <string>

namespace papyrus {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 to spread the seed into four xoshiro256** words.
    uint64_t x = seed;
    for (auto& w : s_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      w = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n).  n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

// Zipfian-distributed integers over [0, n) — the standard skewed-workload
// model (YCSB uses the same construction).  Rank 0 is the hottest item.
// Uses the Gray et al. quantile method: draw u ∈ [0,1), invert the
// generalized harmonic CDF via precomputed constants.
class Zipfian {
 public:
  // theta ∈ (0,1): skew (0.99 = YCSB default, higher = more skew).
  Zipfian(uint64_t n, double theta = 0.99) : n_(n), theta_(theta) {
    double zeta = 0;
    for (uint64_t i = 1; i <= n_; ++i) {
      zeta += 1.0 / Pow(static_cast<double>(i), theta_);
    }
    zetan_ = zeta;
    double zeta2 = 0;
    for (uint64_t i = 1; i <= 2 && i <= n_; ++i) {
      zeta2 += 1.0 / Pow(static_cast<double>(i), theta_);
    }
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - Pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  uint64_t Next(Rng& rng) const {
    const double u = rng.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + Pow(0.5, theta_)) return 1;
    const uint64_t v = static_cast<uint64_t>(
        static_cast<double>(n_) * Pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

 private:
  static double Pow(double base, double exp) {
    return __builtin_pow(base, exp);
  }
  uint64_t n_;
  double theta_;
  double zetan_, alpha_, eta_;
};

// Random string over [a-zA-Z0-9], the paper's key alphabet.
inline std::string RandomKey(Rng& rng, size_t len) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::string s(len, '\0');
  for (size_t i = 0; i < len; ++i) {
    s[i] = kAlphabet[rng.Uniform(sizeof(kAlphabet) - 1)];
  }
  return s;
}

// Value payload: repeating pattern derived from the seed so corruption is
// detectable byte-by-byte in tests.
inline std::string PatternValue(uint64_t seed, size_t len) {
  std::string s(len, '\0');
  uint64_t x = seed | 1;
  for (size_t i = 0; i < len; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    s[i] = static_cast<char>('A' + ((x >> 33) % 26));
  }
  return s;
}

}  // namespace papyrus
