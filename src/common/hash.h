// Hash functions.
//
// PapyrusKV determines the owner rank of a key by hashing it and taking the
// remainder modulo the number of ranks (paper §2.4).  Applications may
// install a custom hash for load balancing (§2.4 "Load balancing"); the
// built-in default is the 64-bit FNV-1a below.  Murmur-style finalization is
// provided for the bloom filter's double hashing.
#pragma once

#include <cstdint>

#include "common/slice.h"

namespace papyrus {

// 64-bit FNV-1a over an arbitrary byte array.  The library's built-in key
// hash: simple, endian-independent, good avalanche for short string keys.
inline uint64_t Fnv1a64(const char* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

inline uint64_t Fnv1a64(const Slice& s) { return Fnv1a64(s.data(), s.size()); }

// Murmur3-style 64-bit finalizer; used to derive independent bloom probes
// from one base hash (Kirsch–Mitzenmacher double hashing).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

// Signature of an application-supplied key hash (paper: papyruskv_option_t
// carries a custom hash used to pick the owner rank).
using KeyHashFn = uint64_t (*)(const char* key, size_t keylen);

// Built-in hash with the KeyHashFn signature.
inline uint64_t BuiltinKeyHash(const char* key, size_t keylen) {
  return Fnv1a64(key, keylen);
}

}  // namespace papyrus
