// CRC-32C (Castagnoli) used to protect SSTable blocks and checkpoint images
// against corruption on (simulated) NVM.  Software table-driven
// implementation; the polynomial matches what iSCSI/ext4/LevelDB use so the
// values are easy to cross-check.
#pragma once

#include <cstddef>
#include <cstdint>

namespace papyrus {

// CRC of [data, data+n), seeded with `init` (pass 0 for a fresh CRC, or a
// previous result to extend it over concatenated buffers).
uint32_t Crc32c(const void* data, size_t n, uint32_t init = 0);

// A CRC stored on disk is masked so that computing a CRC over a buffer that
// itself embeds CRCs does not degenerate (same trick as LevelDB).
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace papyrus
