// Little-endian fixed-width and varint encodings for on-disk formats and
// network messages.  Byte-order independent: always stores little-endian
// regardless of host.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace papyrus {

inline void EncodeFixed32(char* dst, uint32_t v) {
  dst[0] = static_cast<char>(v & 0xff);
  dst[1] = static_cast<char>((v >> 8) & 0xff);
  dst[2] = static_cast<char>((v >> 16) & 0xff);
  dst[3] = static_cast<char>((v >> 24) & 0xff);
}

inline void EncodeFixed64(char* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) dst[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

inline uint32_t DecodeFixed32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

inline uint64_t DecodeFixed64(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(u[i]) << (8 * i);
  return v;
}

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

// Length-prefixed byte string: fixed32 length then raw bytes.
inline void PutLengthPrefixed(std::string* dst, const Slice& s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

// Reads a length-prefixed string from *input, advancing it.  Returns false
// on truncation.
inline bool GetLengthPrefixed(Slice* input, Slice* out) {
  if (input->size() < 4) return false;
  uint32_t len = DecodeFixed32(input->data());
  input->remove_prefix(4);
  if (input->size() < len) return false;
  *out = Slice(input->data(), len);
  input->remove_prefix(len);
  return true;
}

inline bool GetFixed32(Slice* input, uint32_t* v) {
  if (input->size() < 4) return false;
  *v = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return true;
}

inline bool GetFixed64(Slice* input, uint64_t* v) {
  if (input->size() < 8) return false;
  *v = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return true;
}

}  // namespace papyrus
