#include "common/env.h"

#include <cstdlib>

namespace papyrus {

std::optional<std::string> EnvString(const char* name) {
  const char* v = std::getenv(name);
  if (!v || !*v) return std::nullopt;
  return std::string(v);
}

std::optional<int64_t> EnvInt(const char* name) {
  auto s = EnvString(name);
  if (!s) return std::nullopt;
  char* end = nullptr;
  long long v = strtoll(s->c_str(), &end, 10);
  if (end == s->c_str() || *end != '\0') return std::nullopt;
  return static_cast<int64_t>(v);
}

std::optional<bool> EnvBool(const char* name) {
  auto v = EnvInt(name);
  if (!v) return std::nullopt;
  return *v != 0;
}

EnvConfig EnvConfig::Load() {
  EnvConfig c;
  c.repository = EnvString("PAPYRUSKV_REPOSITORY").value_or("");
  c.group_size = EnvInt("PAPYRUSKV_GROUP_SIZE");
  c.consistency = EnvInt("PAPYRUSKV_CONSISTENCY");
  c.bin_search = EnvInt("PAPYRUSKV_BIN_SEARCH");
  c.cache_remote = EnvBool("PAPYRUSKV_CACHE_REMOTE");
  c.force_redistribute = EnvBool("PAPYRUSKV_FORCE_REDISTRIBUTE");
  c.memtable_bytes = EnvInt("PAPYRUSKV_MEMTABLE_SIZE");
  c.lustre_path = EnvString("PAPYRUSKV_LUSTRE");
  return c;
}

}  // namespace papyrus
