// Minimal thread-safe leveled logging.  Per-rank prefixes keep interleaved
// output from the emulated ranks readable.  Level is controlled by
// PAPYRUS_LOG (0=off, 1=error, 2=warn, 3=info, 4=debug); default warn.
#pragma once

#include <sstream>
#include <string>

namespace papyrus {

enum class LogLevel : int { kOff = 0, kError = 1, kWarn = 2, kInfo = 3, kDebug = 4 };

LogLevel GlobalLogLevel();
void SetGlobalLogLevel(LogLevel lvl);

// Tags this thread's log lines with an emulated rank (-1 = no rank).  A
// function rather than an exported thread_local: cross-TU extern TLS
// stores trip a GCC UBSan false positive (null-pointer store), and the
// indirection keeps the TLS slot private to logging.cc.
void SetLogRank(int rank);

// Emits a single line, atomically, tagged with the level and the calling
// emulated rank (if any).
void LogLine(LogLevel lvl, const std::string& msg);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel lvl) : lvl_(lvl) {}
  ~LogMessage() { LogLine(lvl_, ss_.str()); }
  std::ostringstream& stream() { return ss_; }

 private:
  LogLevel lvl_;
  std::ostringstream ss_;
};
}  // namespace detail

#define PAPYRUS_LOG(level)                                        \
  if (static_cast<int>(::papyrus::GlobalLogLevel()) >=            \
      static_cast<int>(::papyrus::LogLevel::level))               \
  ::papyrus::detail::LogMessage(::papyrus::LogLevel::level).stream()

#define PLOG_ERROR PAPYRUS_LOG(kError)
#define PLOG_WARN PAPYRUS_LOG(kWarn)
#define PLOG_INFO PAPYRUS_LOG(kInfo)
#define PLOG_DEBUG PAPYRUS_LOG(kDebug)

}  // namespace papyrus
