// Runtime lock-order (deadlock-cycle) validator behind common/mutex.h.
//
// Model: a global directed graph over live mutex instances.  When a thread
// that holds H acquires M, the edge H→M ("H is acquired before M") is
// recorded.  If a path M→…→H already exists, some other code path acquires
// these locks in the opposite order — two threads running both paths
// simultaneously can deadlock, even if no schedule has hit it yet.  That
// acquisition aborts immediately, printing the held-lock stack of this
// thread and the stack recorded when each edge of the conflicting path was
// first observed (the "other" order).
//
// The validator's own bookkeeping lock is a raw std::mutex, deliberately
// outside the wrapper: it is a leaf acquired only inside the hooks, and
// instrumenting it would recurse.  // lint:allow-raw-mutex
//
// Everything here is always compiled (so instrumented and uninstrumented
// translation units link together); the hooks are only *called* from code
// built with PAPYRUS_LOCK_ORDER_DEBUG=1 (default in debug builds).

#include "common/mutex.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace papyrus::lockorder {

namespace {

struct HeldLock {
  const void* mu;
  const char* name;
};

// The calling thread's currently held instrumented locks, oldest first.
thread_local std::vector<HeldLock> t_held;

struct Edge {
  // Human-readable held stack captured when this edge was first recorded:
  // "a -> b" means b was acquired while a was held.
  std::string where;
};

struct Graph {
  std::mutex mu;  // lint:allow-raw-mutex (validator-internal leaf lock)
  // adj[a][b] exists iff "a acquired before b" has been observed.
  std::unordered_map<const void*, std::unordered_map<const void*, Edge>> adj;
  std::unordered_map<const void*, const char*> names;
};

Graph& G() {
  static Graph* g = new Graph();  // leaked: mutexes destruct at exit too
  return *g;
}

std::string DescribeHeld(const std::vector<HeldLock>& held,
                         const char* acquiring_name, const void* acquiring) {
  std::string out;
  for (const auto& h : held) {
    out += h.name;
    out += "(";
    char buf[24];
    snprintf(buf, sizeof(buf), "%p", h.mu);
    out += buf;
    out += ") -> ";
  }
  out += acquiring_name;
  char buf[24];
  snprintf(buf, sizeof(buf), "(%p)", acquiring);
  out += buf;
  return out;
}

// DFS: is `to` reachable from `from`?  On success fills *path with the node
// sequence from→…→to.  Caller holds G().mu.
bool PathExists(const void* from, const void* to,
                std::vector<const void*>* path) {
  std::unordered_set<const void*> visited;
  std::vector<const void*> stack;
  // Iterative DFS keeping the current path for diagnostics.
  struct Frame {
    const void* node;
    std::unordered_map<const void*, Edge>::const_iterator it, end;
  };
  auto& adj = G().adj;
  auto start = adj.find(from);
  path->clear();
  path->push_back(from);
  if (from == to) return true;
  if (start == adj.end()) {
    path->clear();
    return false;
  }
  std::vector<Frame> frames{{from, start->second.begin(), start->second.end()}};
  visited.insert(from);
  while (!frames.empty()) {
    Frame& f = frames.back();
    if (f.it == f.end) {
      frames.pop_back();
      path->pop_back();
      continue;
    }
    const void* next = f.it->first;
    ++f.it;
    if (visited.count(next)) continue;
    visited.insert(next);
    path->push_back(next);
    if (next == to) return true;
    auto it = adj.find(next);
    if (it == adj.end()) {
      path->pop_back();
      continue;
    }
    frames.push_back({next, it->second.begin(), it->second.end()});
  }
  path->clear();
  return false;
}

const char* NameOf(const void* mu) {
  auto it = G().names.find(mu);
  return it == G().names.end() ? "?" : it->second;
}

[[noreturn]] void Die() {
  fflush(stderr);
  abort();
}

}  // namespace

void OnAcquire(const void* mu, const char* name) {
  // Same-thread recursive acquisition: std::mutex would deadlock right
  // here; report it instead of hanging.
  for (const auto& h : t_held) {
    if (h.mu == mu) {
      fprintf(stderr,
              "lockorder: FATAL: thread re-acquires mutex %s(%p) it already "
              "holds\n  held: %s\n",
              name, mu, DescribeHeld(t_held, name, mu).c_str());
      Die();
    }
  }
  if (t_held.empty()) return;

  std::lock_guard<std::mutex> lock(G().mu);
  G().names[mu] = name;
  for (const auto& h : t_held) {
    auto& edges = G().adj[h.mu];
    if (edges.count(mu)) continue;  // order already known-consistent
    std::vector<const void*> path;
    if (PathExists(mu, h.mu, &path)) {
      // Acquiring mu while holding h closes the cycle h→mu→…→h.
      fprintf(stderr,
              "lockorder: FATAL: lock acquisition order inversion "
              "(potential deadlock)\n"
              "  this thread:  %s\n"
              "  conflicting acquisition order previously observed:\n",
              DescribeHeld(t_held, name, mu).c_str());
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        const Edge& e = G().adj[path[i]][path[i + 1]];
        fprintf(stderr, "    %s(%p) before %s(%p)   [recorded at: %s]\n",
                NameOf(path[i]), path[i], NameOf(path[i + 1]), path[i + 1],
                e.where.c_str());
      }
      Die();
    }
    edges.emplace(mu, Edge{DescribeHeld(t_held, name, mu)});
  }
}

void OnLocked(const void* mu, const char* name) {
  t_held.push_back({mu, name});
}

void OnRelease(const void* mu) {
  // Locks are almost always released LIFO; scan from the top to support
  // hand-over-hand patterns too.
  for (size_t i = t_held.size(); i-- > 0;) {
    if (t_held[i].mu == mu) {
      t_held.erase(t_held.begin() + static_cast<long>(i));
      return;
    }
  }
  fprintf(stderr, "lockorder: FATAL: thread releases mutex %p it does not hold\n",
          mu);
  Die();
}

void OnDestroy(const void* mu) {
  std::lock_guard<std::mutex> lock(G().mu);
  G().adj.erase(mu);
  for (auto& [from, edges] : G().adj) edges.erase(mu);
  G().names.erase(mu);
}

bool IsHeld(const void* mu) {
  for (const auto& h : t_held) {
    if (h.mu == mu) return true;
  }
  return false;
}

void ResetForTest() {
  std::lock_guard<std::mutex> lock(G().mu);
  G().adj.clear();
  G().names.clear();
  t_held.clear();
}

}  // namespace papyrus::lockorder
