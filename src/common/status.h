// Error codes and the Status value type used across the PapyrusKV
// reproduction.
//
// The paper (Table 1, §2.2) specifies that every API function returns a
// 32-bit integer error code such as PAPYRUSKV_SUCCESS, PAPYRUSKV_INVALID_DB,
// PAPYRUSKV_NOT_FOUND.  The C API in core/papyruskv.h returns these raw
// integers; internal C++ code passes them around wrapped in Status so that
// call sites can attach context messages without allocating on the success
// path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

// Raw error codes, exactly as the public C API exposes them.
enum : int32_t {
  PAPYRUSKV_SUCCESS = 0,
  PAPYRUSKV_ERR = -1,              // generic failure
  PAPYRUSKV_NOT_FOUND = -2,        // key absent or tombstoned
  PAPYRUSKV_INVALID_DB = -3,       // bad/closed database descriptor
  PAPYRUSKV_INVALID_ARG = -4,      // null/ill-formed argument
  PAPYRUSKV_OUT_OF_MEMORY = -5,    // allocation or pool exhaustion
  PAPYRUSKV_IO_ERROR = -6,         // POSIX-level storage failure
  PAPYRUSKV_NETWORK_ERROR = -7,    // transport failure between ranks
  PAPYRUSKV_PROTECTED = -8,        // op forbidden by protection attribute
  PAPYRUSKV_INVALID_EVENT = -9,    // unknown event handle in wait
  PAPYRUSKV_CORRUPTED = -10,       // checksum / format mismatch on NVM
  PAPYRUSKV_TIMEOUT = -11,         // reply/signal wait exceeded its deadline
  PAPYRUSKV_CLOSED = -12,          // runtime already finalized
};

// Spelling used by the fault/recovery docs and tests for the timeout code
// surfaced when a remote peer stops replying (DESIGN.md §8).
inline constexpr int32_t PAPYRUSKV_ERR_TIMEOUT = PAPYRUSKV_TIMEOUT;

namespace papyrus {

// Human-readable name for an error code ("PAPYRUSKV_NOT_FOUND", ...).
const char* ErrorName(int32_t code);

// A cheap value type carrying an error code plus an optional message.
// Success carries no message and never allocates.
//
// [[nodiscard]]: silently dropping a Status hides I/O and network failures
// (exactly the bug class the lint gate exists for).  The rare call site
// that genuinely cannot act on the error calls IgnoreError() to say so.
class [[nodiscard]] Status {
 public:
  Status() : code_(PAPYRUSKV_SUCCESS) {}
  explicit Status(int32_t code) : code_(code) {}
  Status(int32_t code, std::string_view msg) : code_(code), msg_(msg) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view m = {}) {
    return Status(PAPYRUSKV_NOT_FOUND, m);
  }
  static Status InvalidArg(std::string_view m = {}) {
    return Status(PAPYRUSKV_INVALID_ARG, m);
  }
  static Status IOError(std::string_view m = {}) {
    return Status(PAPYRUSKV_IO_ERROR, m);
  }
  static Status Corrupted(std::string_view m = {}) {
    return Status(PAPYRUSKV_CORRUPTED, m);
  }
  static Status Network(std::string_view m = {}) {
    return Status(PAPYRUSKV_NETWORK_ERROR, m);
  }
  static Status Protected(std::string_view m = {}) {
    return Status(PAPYRUSKV_PROTECTED, m);
  }
  static Status Timeout(std::string_view m = {}) {
    return Status(PAPYRUSKV_TIMEOUT, m);
  }

  bool ok() const { return code_ == PAPYRUSKV_SUCCESS; }
  bool IsNotFound() const { return code_ == PAPYRUSKV_NOT_FOUND; }
  bool IsTimeout() const { return code_ == PAPYRUSKV_TIMEOUT; }
  int32_t code() const { return code_; }
  const std::string& message() const { return msg_; }

  // Full rendering, e.g. "PAPYRUSKV_IO_ERROR: open failed".
  std::string ToString() const;

  // Explicit escape hatch for call sites that deliberately drop the
  // status (best-effort cleanup paths).  Grep-able, unlike a void cast.
  void IgnoreError() const {}

 private:
  int32_t code_;
  std::string msg_;
};

}  // namespace papyrus
