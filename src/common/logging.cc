#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/env.h"
#include "common/mutex.h"

namespace papyrus {

// Set by the rank runtime (net/runtime.cc) for each emulated rank thread so
// log lines can be attributed; -1 outside any rank.  Private to this TU —
// see SetLogRank in the header.
namespace {
thread_local int tls_log_rank = -1;
}  // namespace

void SetLogRank(int rank) { tls_log_rank = rank; }

namespace {

std::atomic<int> g_level{-1};

int LoadLevel() {
  int lvl = g_level.load(std::memory_order_relaxed);
  if (lvl >= 0) return lvl;
  int from_env = static_cast<int>(EnvInt("PAPYRUS_LOG").value_or(2));
  g_level.store(from_env, std::memory_order_relaxed);
  return from_env;
}

// Leaf lock: serializes stderr writes only; never held while acquiring
// another lock.
Mutex& LogMutex() {
  static Mutex m("log_mu");
  return m;
}

const char* LevelTag(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    default: return "?";
  }
}

}  // namespace

LogLevel GlobalLogLevel() { return static_cast<LogLevel>(LoadLevel()); }

void SetGlobalLogLevel(LogLevel lvl) {
  g_level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

void LogLine(LogLevel lvl, const std::string& msg) {
  MutexLock lock(&LogMutex());
  if (tls_log_rank >= 0) {
    fprintf(stderr, "[%s rank %d] %s\n", LevelTag(lvl), tls_log_rank,
            msg.c_str());
  } else {
    fprintf(stderr, "[%s] %s\n", LevelTag(lvl), msg.c_str());
  }
}

}  // namespace papyrus
