// Clang thread-safety analysis attributes (the -Wthread-safety family).
//
// These macros wrap __attribute__((...)) so that locking invariants live in
// the type system: a field declares the mutex that guards it (GUARDED_BY),
// a helper declares the lock it expects held (REQUIRES), and the compiler
// rejects any code path that violates the contract.  Under GCC (no
// -Wthread-safety support) they compile to nothing; correctness then rests
// on the runtime lock-order validator in common/mutex.h and the sanitizer
// matrix.  Build with -DPAPYRUS_THREAD_SAFETY=ON under Clang to make the
// contract enforced at compile time (scripts/ci.sh does).
//
// Usage rules (see DESIGN.md "Correctness tooling"):
//   * every mutex-protected field carries GUARDED_BY(mu_);
//   * every *_locked() / *Locked() helper carries REQUIRES(mu_);
//   * functions that take/drop a lock internally carry ACQUIRE/RELEASE;
//   * functions that must NOT be called with a lock held carry EXCLUDES.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define PAPYRUS_TSA(x) __attribute__((x))
#else
#define PAPYRUS_TSA(x)  // no-op: GCC and others lack -Wthread-safety
#endif

#define CAPABILITY(x) PAPYRUS_TSA(capability(x))
#define SCOPED_CAPABILITY PAPYRUS_TSA(scoped_lockable)

// Data members: the declared lock must be held to touch this field.
#define GUARDED_BY(x) PAPYRUS_TSA(guarded_by(x))
// Pointer members: the lock guards the pointed-to data (not the pointer).
#define PT_GUARDED_BY(x) PAPYRUS_TSA(pt_guarded_by(x))

// Lock-ordering declarations (documentation the analysis also checks).
#define ACQUIRED_BEFORE(...) PAPYRUS_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) PAPYRUS_TSA(acquired_after(__VA_ARGS__))

// Function preconditions: the listed capabilities must be held on entry
// (and are still held on exit).
#define REQUIRES(...) PAPYRUS_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) PAPYRUS_TSA(requires_shared_capability(__VA_ARGS__))

// The function acquires the capability (held on exit, not on entry).
#define ACQUIRE(...) PAPYRUS_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) PAPYRUS_TSA(acquire_shared_capability(__VA_ARGS__))
// The function releases the capability (held on entry, not on exit).
#define RELEASE(...) PAPYRUS_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) PAPYRUS_TSA(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) PAPYRUS_TSA(release_generic_capability(__VA_ARGS__))

// Conditional acquisition: first argument is the success return value.
#define TRY_ACQUIRE(...) PAPYRUS_TSA(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  PAPYRUS_TSA(try_acquire_shared_capability(__VA_ARGS__))

// The listed capabilities must NOT be held when calling (deadlock guard for
// functions that acquire them internally).
#define EXCLUDES(...) PAPYRUS_TSA(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held (for code the analysis
// cannot follow, e.g. callbacks).
#define ASSERT_CAPABILITY(x) PAPYRUS_TSA(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) PAPYRUS_TSA(assert_shared_capability(x))

// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) PAPYRUS_TSA(lock_returned(x))

// Escape hatch: the function's locking cannot be expressed to the analysis.
#define NO_THREAD_SAFETY_ANALYSIS PAPYRUS_TSA(no_thread_safety_analysis)
