// A from-scratch red-black tree.
//
// The paper states (§2.4): "The MemTable is implemented as a red-black tree
// indexed by key.  A red-black tree is a self-balancing binary tree.  Thus,
// insert, lookup, and delete operations take O(log n) time."  This is that
// structure, implemented per CLRS with a shared nil sentinel, rather than an
// alias for std::map, so the reproduction contains the data structure the
// paper names and its invariants can be property-tested directly
// (tests/common/rbtree_test.cc).
//
// RbTree<K, V, Compare> is an ordered map: unique keys, insert-or-assign,
// erase, lower_bound, in-order forward iteration.  Not thread-safe; MemTable
// provides the locking.
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <utility>

namespace papyrus {

template <typename K, typename V, typename Compare = std::less<K>>
class RbTree {
 private:
  enum Color : unsigned char { kRed, kBlack };

  struct Node {
    K key;
    V value;
    Node* left;
    Node* right;
    Node* parent;
    Color color;
  };

 public:
  RbTree() : RbTree(Compare()) {}
  explicit RbTree(Compare cmp) : cmp_(std::move(cmp)) {
    nil_ = new Node{K{}, V{}, nullptr, nullptr, nullptr, kBlack};
    nil_->left = nil_->right = nil_->parent = nil_;
    root_ = nil_;
  }

  ~RbTree() {
    clear();
    delete nil_;
  }

  RbTree(const RbTree&) = delete;
  RbTree& operator=(const RbTree&) = delete;

  RbTree(RbTree&& o) noexcept
      : cmp_(std::move(o.cmp_)), nil_(o.nil_), root_(o.root_), size_(o.size_) {
    o.nil_ = new Node{K{}, V{}, nullptr, nullptr, nullptr, kBlack};
    o.nil_->left = o.nil_->right = o.nil_->parent = o.nil_;
    o.root_ = o.nil_;
    o.size_ = 0;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    DestroySubtree(root_);
    root_ = nil_;
    size_ = 0;
  }

  // Inserts key→value; if key exists, replaces the value (the paper: "If
  // another key-value pair that has the same key already exists ...
  // PapyrusKV deletes the old one before it inserts the new one").
  // Returns true if a new node was created, false on replacement.
  bool InsertOrAssign(const K& key, V value) {
    Node* parent = nil_;
    Node* cur = root_;
    while (cur != nil_) {
      parent = cur;
      if (cmp_(key, cur->key)) {
        cur = cur->left;
      } else if (cmp_(cur->key, key)) {
        cur = cur->right;
      } else {
        cur->value = std::move(value);
        return false;
      }
    }
    Node* n = new Node{key, std::move(value), nil_, nil_, parent, kRed};
    if (parent == nil_) {
      root_ = n;
    } else if (cmp_(key, parent->key)) {
      parent->left = n;
    } else {
      parent->right = n;
    }
    InsertFixup(n);
    ++size_;
    return true;
  }

  // Returns the value for key, or nullptr if absent.  The pointer is valid
  // until the node is erased or reassigned.
  V* Find(const K& key) {
    Node* n = FindNode(key);
    return n == nil_ ? nullptr : &n->value;
  }
  const V* Find(const K& key) const {
    return const_cast<RbTree*>(this)->Find(key);
  }

  // Removes key.  Returns true if it was present.
  bool Erase(const K& key) {
    Node* z = FindNode(key);
    if (z == nil_) return false;
    EraseNode(z);
    --size_;
    return true;
  }

  // Minimal in-order iterator (forward only) so callers can walk entries in
  // sorted key order — exactly what flushing a MemTable to a sorted SSTable
  // needs.
  class Iterator {
   public:
    Iterator(const RbTree* tree, Node* n) : tree_(tree), node_(n) {}

    bool Valid() const { return node_ != tree_->nil_; }
    const K& key() const { return node_->key; }
    const V& value() const { return node_->value; }
    V& mutable_value() { return node_->value; }

    void Next() {
      assert(Valid());
      node_ = tree_->Successor(node_);
    }

   private:
    const RbTree* tree_;
    Node* node_;
  };

  Iterator Begin() const {
    return Iterator(this, root_ == nil_ ? nil_ : Minimum(root_));
  }

  // First entry with key >= target, or an invalid iterator.
  Iterator LowerBound(const K& target) const {
    Node* best = nil_;
    Node* cur = root_;
    while (cur != nil_) {
      if (!cmp_(cur->key, target)) {  // cur->key >= target
        best = cur;
        cur = cur->left;
      } else {
        cur = cur->right;
      }
    }
    return Iterator(this, best);
  }

  // --- Invariant checking (for property tests) -----------------------------
  // Verifies: root is black; no red node has a red child; every root→leaf
  // path has the same black height; BST ordering holds.  Returns the black
  // height, or -1 on violation.
  int CheckInvariants() const {
    if (root_->color != kBlack) return -1;
    return CheckSubtree(root_, nullptr, nullptr);
  }

 private:
  Node* FindNode(const K& key) const {
    Node* cur = root_;
    while (cur != nil_) {
      if (cmp_(key, cur->key)) {
        cur = cur->left;
      } else if (cmp_(cur->key, key)) {
        cur = cur->right;
      } else {
        return cur;
      }
    }
    return nil_;
  }

  void DestroySubtree(Node* n) {
    if (n == nil_) return;
    DestroySubtree(n->left);
    DestroySubtree(n->right);
    delete n;
  }

  Node* Minimum(Node* n) const {
    while (n->left != nil_) n = n->left;
    return n;
  }

  Node* Successor(Node* n) const {
    if (n->right != nil_) return Minimum(n->right);
    Node* p = n->parent;
    while (p != nil_ && n == p->right) {
      n = p;
      p = p->parent;
    }
    return p;
  }

  void LeftRotate(Node* x) {
    Node* y = x->right;
    x->right = y->left;
    if (y->left != nil_) y->left->parent = x;
    y->parent = x->parent;
    if (x->parent == nil_) root_ = y;
    else if (x == x->parent->left) x->parent->left = y;
    else x->parent->right = y;
    y->left = x;
    x->parent = y;
  }

  void RightRotate(Node* x) {
    Node* y = x->left;
    x->left = y->right;
    if (y->right != nil_) y->right->parent = x;
    y->parent = x->parent;
    if (x->parent == nil_) root_ = y;
    else if (x == x->parent->right) x->parent->right = y;
    else x->parent->left = y;
    y->right = x;
    x->parent = y;
  }

  void InsertFixup(Node* z) {
    while (z->parent->color == kRed) {
      if (z->parent == z->parent->parent->left) {
        Node* uncle = z->parent->parent->right;
        if (uncle->color == kRed) {
          z->parent->color = kBlack;
          uncle->color = kBlack;
          z->parent->parent->color = kRed;
          z = z->parent->parent;
        } else {
          if (z == z->parent->right) {
            z = z->parent;
            LeftRotate(z);
          }
          z->parent->color = kBlack;
          z->parent->parent->color = kRed;
          RightRotate(z->parent->parent);
        }
      } else {
        Node* uncle = z->parent->parent->left;
        if (uncle->color == kRed) {
          z->parent->color = kBlack;
          uncle->color = kBlack;
          z->parent->parent->color = kRed;
          z = z->parent->parent;
        } else {
          if (z == z->parent->left) {
            z = z->parent;
            RightRotate(z);
          }
          z->parent->color = kBlack;
          z->parent->parent->color = kRed;
          LeftRotate(z->parent->parent);
        }
      }
    }
    root_->color = kBlack;
  }

  void Transplant(Node* u, Node* v) {
    if (u->parent == nil_) root_ = v;
    else if (u == u->parent->left) u->parent->left = v;
    else u->parent->right = v;
    v->parent = u->parent;
  }

  void EraseNode(Node* z) {
    Node* y = z;
    Color y_original = y->color;
    Node* x;
    if (z->left == nil_) {
      x = z->right;
      Transplant(z, z->right);
    } else if (z->right == nil_) {
      x = z->left;
      Transplant(z, z->left);
    } else {
      y = Minimum(z->right);
      y_original = y->color;
      x = y->right;
      if (y->parent == z) {
        x->parent = y;  // x may be nil_; its parent is read in EraseFixup
      } else {
        Transplant(y, y->right);
        y->right = z->right;
        y->right->parent = y;
      }
      Transplant(z, y);
      y->left = z->left;
      y->left->parent = y;
      y->color = z->color;
    }
    delete z;
    if (y_original == kBlack) EraseFixup(x);
  }

  void EraseFixup(Node* x) {
    while (x != root_ && x->color == kBlack) {
      if (x == x->parent->left) {
        Node* w = x->parent->right;
        if (w->color == kRed) {
          w->color = kBlack;
          x->parent->color = kRed;
          LeftRotate(x->parent);
          w = x->parent->right;
        }
        if (w->left->color == kBlack && w->right->color == kBlack) {
          w->color = kRed;
          x = x->parent;
        } else {
          if (w->right->color == kBlack) {
            w->left->color = kBlack;
            w->color = kRed;
            RightRotate(w);
            w = x->parent->right;
          }
          w->color = x->parent->color;
          x->parent->color = kBlack;
          w->right->color = kBlack;
          LeftRotate(x->parent);
          x = root_;
        }
      } else {
        Node* w = x->parent->left;
        if (w->color == kRed) {
          w->color = kBlack;
          x->parent->color = kRed;
          RightRotate(x->parent);
          w = x->parent->left;
        }
        if (w->right->color == kBlack && w->left->color == kBlack) {
          w->color = kRed;
          x = x->parent;
        } else {
          if (w->left->color == kBlack) {
            w->right->color = kBlack;
            w->color = kRed;
            LeftRotate(w);
            w = x->parent->left;
          }
          w->color = x->parent->color;
          x->parent->color = kBlack;
          w->left->color = kBlack;
          RightRotate(x->parent);
          x = root_;
        }
      }
    }
    x->color = kBlack;
  }

  // Returns black height of subtree, or -1 on violation.  min/max bound the
  // allowed key range (null = unbounded).
  int CheckSubtree(Node* n, const K* min, const K* max) const {
    if (n == nil_) return 0;
    if (min && !cmp_(*min, n->key)) return -1;  // key must be > *min
    if (max && !cmp_(n->key, *max)) return -1;  // key must be < *max
    if (n->color == kRed &&
        (n->left->color == kRed || n->right->color == kRed)) {
      return -1;
    }
    int lh = CheckSubtree(n->left, min, &n->key);
    int rh = CheckSubtree(n->right, &n->key, max);
    if (lh < 0 || rh < 0 || lh != rh) return -1;
    return lh + (n->color == kBlack ? 1 : 0);
  }

  Compare cmp_;
  Node* nil_;
  Node* root_;
  size_t size_ = 0;
};

}  // namespace papyrus
