// Wall-clock helpers: microsecond timestamps and a Stopwatch, used by the
// bench harness (the paper reports average/min/max total execution time
// across ranks) and by the device/interconnect performance models.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace papyrus {

// Monotonic microseconds since an arbitrary epoch.
inline uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline double NowSeconds() { return static_cast<double>(NowMicros()) * 1e-6; }

class Stopwatch {
 public:
  Stopwatch() : start_(NowMicros()) {}
  void Reset() { start_ = NowMicros(); }
  uint64_t ElapsedMicros() const { return NowMicros() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) * 1e-6;
  }

 private:
  uint64_t start_;
};

// Sleeps `us` microseconds.  Short waits (< 50us) are spun so the device
// model stays accurate at NVMe-like latencies where OS sleep quantums are
// too coarse; longer waits yield to the scheduler.
inline void PreciseSleepMicros(uint64_t us) {
  if (us == 0) return;
  if (us >= 50) {
    std::this_thread::sleep_for(std::chrono::microseconds(us - 20));
  }
  const uint64_t deadline = NowMicros() + (us >= 50 ? 20 : us);
  while (NowMicros() < deadline) {
    // spin
  }
}

}  // namespace papyrus
