// Annotated synchronization primitives — the only locking layer src/ may
// use (tools/papyrus_lint.py rejects raw std::mutex outside this file).
//
// Three things in one wrapper, RocksDB/absl port-layer style:
//   1. Clang thread-safety capability annotations (thread_annotations.h):
//      Mutex is a CAPABILITY, MutexLock a SCOPED_CAPABILITY, so the
//      compiler can enforce GUARDED_BY/REQUIRES contracts repo-wide.
//   2. A debug-build lock-order validator: every acquisition is recorded in
//      a per-thread held-lock stack feeding a global acquisition-order
//      graph; an acquisition that would close a cycle (an A→B order where
//      B→A was previously observed — a potential deadlock even if this
//      schedule survives) aborts with both acquisition stacks.  Same-thread
//      recursive acquisition aborts likewise.
//   3. Zero release-build overhead: with PAPYRUS_LOCK_ORDER_DEBUG == 0 (the
//      default under NDEBUG) every hook compiles away and Mutex::Lock is
//      exactly std::mutex::lock.
//
// Canonical lock order (validator-enforced; see DESIGN.md "Correctness
// tooling" for the per-subsystem table):
//   rotate mutex → table mutex → drain mutex   (core/db_shard)
// with leaf mutexes (cache, manifest, registry, mailbox, logging) never
// held while acquiring another lock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

// Lock-order validation is on in debug builds (no NDEBUG), off otherwise.
// Override per target with -DPAPYRUS_LOCK_ORDER_DEBUG=1 (tests/common's
// mutex_test does, so the death tests work under any build type).
#ifndef PAPYRUS_LOCK_ORDER_DEBUG
#ifdef NDEBUG
#define PAPYRUS_LOCK_ORDER_DEBUG 0
#else
#define PAPYRUS_LOCK_ORDER_DEBUG 1
#endif
#endif

namespace papyrus {

// Validator entry points, always compiled (common/mutex.cc) so a mix of
// instrumented and uninstrumented translation units links; only
// instrumented TUs call them.
namespace lockorder {
// Pre-lock: checks the acquisition-order graph for a cycle against every
// lock the thread already holds, records the new edges, and aborts with a
// diagnostic (both acquisition stacks) if acquiring `mu` could deadlock.
void OnAcquire(const void* mu, const char* name);
// Post-lock: pushes `mu` onto the thread's held stack.
void OnLocked(const void* mu, const char* name);
// Post-unlock bookkeeping: pops `mu` from the thread's held stack.
void OnRelease(const void* mu);
// Mutex destruction: drops the node and its edges from the graph (the
// address may be reused by an unrelated mutex).
void OnDestroy(const void* mu);
// True if the calling thread currently holds `mu` (debug assertions).
bool IsHeld(const void* mu);
// Clears the global order graph (tests only: keeps independent test cases
// from seeing each other's edges).
void ResetForTest();
}  // namespace lockorder

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

class CAPABILITY("mutex") Mutex {
 public:
  // `name` must outlive the mutex (string literals); it labels the mutex in
  // lock-order diagnostics.
  explicit Mutex(const char* name = "mutex") : name_(name) {}
  ~Mutex() {
#if PAPYRUS_LOCK_ORDER_DEBUG
    lockorder::OnDestroy(this);
#endif
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#if PAPYRUS_LOCK_ORDER_DEBUG
    lockorder::OnAcquire(this, name_);
#endif
    mu_.lock();
#if PAPYRUS_LOCK_ORDER_DEBUG
    lockorder::OnLocked(this, name_);
#endif
  }

  void Unlock() RELEASE() {
    mu_.unlock();
#if PAPYRUS_LOCK_ORDER_DEBUG
    lockorder::OnRelease(this);
#endif
  }

  // No order-graph edge is recorded: a try-lock cannot block, so it cannot
  // participate in a deadlock cycle.
  bool TryLock() TRY_ACQUIRE(true) {
    const bool got = mu_.try_lock();
#if PAPYRUS_LOCK_ORDER_DEBUG
    if (got) lockorder::OnLocked(this, name_);
#else
    (void)name_;  // read only by the lock-order debug build
#endif
    return got;
  }

  // Debug-checked assertion for code paths the static analysis cannot
  // follow (std::function callbacks, virtual dispatch).
  void AssertHeld() const ASSERT_CAPABILITY(this) {
#if PAPYRUS_LOCK_ORDER_DEBUG
    if (!lockorder::IsHeld(this)) __builtin_trap();
#endif
  }

  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const char* name_;
};

// ---------------------------------------------------------------------------
// SharedMutex (reader/writer)
// ---------------------------------------------------------------------------

class CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(const char* name = "shared_mutex") : name_(name) {}
  ~SharedMutex() {
#if PAPYRUS_LOCK_ORDER_DEBUG
    lockorder::OnDestroy(this);
#endif
  }
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
#if PAPYRUS_LOCK_ORDER_DEBUG
    lockorder::OnAcquire(this, name_);
#endif
    mu_.lock();
#if PAPYRUS_LOCK_ORDER_DEBUG
    lockorder::OnLocked(this, name_);
#endif
  }
  void Unlock() RELEASE() {
    mu_.unlock();
#if PAPYRUS_LOCK_ORDER_DEBUG
    lockorder::OnRelease(this);
#endif
  }

  // Shared acquisitions participate in the order graph exactly like
  // exclusive ones: a reader blocked behind a writer deadlocks the same way.
  void ReaderLock() ACQUIRE_SHARED() {
#if PAPYRUS_LOCK_ORDER_DEBUG
    lockorder::OnAcquire(this, name_);
#endif
    mu_.lock_shared();
#if PAPYRUS_LOCK_ORDER_DEBUG
    lockorder::OnLocked(this, name_);
#endif
  }
  void ReaderUnlock() RELEASE_SHARED() {
    mu_.unlock_shared();
#if PAPYRUS_LOCK_ORDER_DEBUG
    lockorder::OnRelease(this);
#endif
  }

  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const char* name_;
};

// ---------------------------------------------------------------------------
// Scoped lock holders
// ---------------------------------------------------------------------------

class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_->ReaderUnlock(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

// Condition variable bound to Mutex.  Wait() temporarily releases the
// caller's lock; the held-lock stack is maintained across the gap so the
// validator sees the re-acquisition (which may record order edges — the
// re-acquire happens with the same remaining held set as the original).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) REQUIRES(mu) {
#if PAPYRUS_LOCK_ORDER_DEBUG
    lockorder::OnRelease(mu);
#endif
    std::unique_lock<std::mutex> ul(mu->mu_, std::adopt_lock);
    cv_.wait(ul);
    ul.release();
#if PAPYRUS_LOCK_ORDER_DEBUG
    lockorder::OnLocked(mu, mu->name_);
#endif
  }

  template <typename Pred>
  void Wait(Mutex* mu, Pred stop_waiting) REQUIRES(mu) {
    while (!stop_waiting()) Wait(mu);
  }

  // Returns false on timeout (the predicate-free form reports whether it
  // was signalled before the deadline; spurious wakeups count as signals,
  // exactly like std::condition_variable::wait_for).
  bool WaitForMicros(Mutex* mu, uint64_t micros) REQUIRES(mu) {
#if PAPYRUS_LOCK_ORDER_DEBUG
    lockorder::OnRelease(mu);
#endif
    std::unique_lock<std::mutex> ul(mu->mu_, std::adopt_lock);
    const auto st = cv_.wait_for(ul, std::chrono::microseconds(micros));
    ul.release();
#if PAPYRUS_LOCK_ORDER_DEBUG
    lockorder::OnLocked(mu, mu->name_);
#endif
    return st == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace papyrus
