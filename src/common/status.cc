#include "common/status.h"

namespace papyrus {

const char* ErrorName(int32_t code) {
  switch (code) {
    case PAPYRUSKV_SUCCESS: return "PAPYRUSKV_SUCCESS";
    case PAPYRUSKV_ERR: return "PAPYRUSKV_ERR";
    case PAPYRUSKV_NOT_FOUND: return "PAPYRUSKV_NOT_FOUND";
    case PAPYRUSKV_INVALID_DB: return "PAPYRUSKV_INVALID_DB";
    case PAPYRUSKV_INVALID_ARG: return "PAPYRUSKV_INVALID_ARG";
    case PAPYRUSKV_OUT_OF_MEMORY: return "PAPYRUSKV_OUT_OF_MEMORY";
    case PAPYRUSKV_IO_ERROR: return "PAPYRUSKV_IO_ERROR";
    case PAPYRUSKV_NETWORK_ERROR: return "PAPYRUSKV_NETWORK_ERROR";
    case PAPYRUSKV_PROTECTED: return "PAPYRUSKV_PROTECTED";
    case PAPYRUSKV_INVALID_EVENT: return "PAPYRUSKV_INVALID_EVENT";
    case PAPYRUSKV_CORRUPTED: return "PAPYRUSKV_CORRUPTED";
    case PAPYRUSKV_TIMEOUT: return "PAPYRUSKV_TIMEOUT";
    case PAPYRUSKV_CLOSED: return "PAPYRUSKV_CLOSED";
    default: return "PAPYRUSKV_UNKNOWN";
  }
}

std::string Status::ToString() const {
  std::string out = ErrorName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace papyrus
