#include "apps/meraculous.h"

#include <algorithm>

#include "common/coding.h"
#include "common/hash.h"
#include "common/timer.h"

namespace papyrus::apps {

// ---------------------------------------------------------------------------
// PapyrusKmerStore
// ---------------------------------------------------------------------------

namespace {
// The UPC application's k-mer hash, installed into PapyrusKV as the custom
// hash so both versions place a k-mer on the same rank (Fig. 12).
uint64_t KmerAffinityHash(const char* key, size_t keylen) {
  return Fnv1a64(key, keylen);
}
}  // namespace

Status PapyrusKmerStore::Open(const std::string& db_name,
                              std::unique_ptr<PapyrusKmerStore>* out) {
  papyruskv_option_t opt;
  const int orc = papyruskv_option_init(&opt);
  if (orc != PAPYRUSKV_SUCCESS) return Status(orc, "option init");
  opt.hash = KmerAffinityHash;
  opt.keylen = 32;
  opt.vallen = 2;
  std::unique_ptr<PapyrusKmerStore> store(new PapyrusKmerStore);
  const int rc = papyruskv_open(db_name.c_str(),
                                PAPYRUSKV_CREATE | PAPYRUSKV_RDWR, &opt,
                                &store->db_);
  if (rc != PAPYRUSKV_SUCCESS) return Status(rc, "open kmer db");
  *out = std::move(store);
  return Status::OK();
}

PapyrusKmerStore::~PapyrusKmerStore() {
  // Best-effort: a destructor cannot surface the close status.
  if (!closed_) (void)papyruskv_close(db_);
}

Status PapyrusKmerStore::Insert(const Slice& kmer, char left, char right) {
  const char ext[2] = {left, right};
  const int rc = papyruskv_put(db_, kmer.data(), kmer.size(), ext, 2);
  return Status(rc);
}

Status PapyrusKmerStore::Lookup(const Slice& kmer, char* left, char* right) {
  char buf[2];
  char* bufp = buf;
  size_t len = sizeof(buf);
  const int rc = papyruskv_get(db_, kmer.data(), kmer.size(), &bufp, &len);
  if (rc != PAPYRUSKV_SUCCESS) return Status(rc);
  if (len != 2) return Status::Corrupted("kmer value size");
  *left = buf[0];
  *right = buf[1];
  return Status::OK();
}

Status PapyrusKmerStore::ClaimSeed(const Slice&, bool* won) {
  // PapyrusKV offers no remote atomic (the gap the paper notes); the
  // caller's deterministic seed partition already guarantees exactly-once.
  *won = true;
  return Status::OK();
}

Status PapyrusKmerStore::Barrier() {
  return Status(papyruskv_barrier(db_, PAPYRUSKV_MEMTABLE));
}

// ---------------------------------------------------------------------------
// DsmKmerStore
// ---------------------------------------------------------------------------

Status DsmKmerStore::Open(net::RankContext& ctx,
                          std::unique_ptr<DsmKmerStore>* out) {
  std::unique_ptr<DsmKmerStore> store(new DsmKmerStore(ctx));
  Status s = baseline::DsmHashTable::Open(ctx, &store->table_);
  if (!s.ok()) return s;
  *out = std::move(store);
  return Status::OK();
}

Status DsmKmerStore::Insert(const Slice& kmer, char left, char right) {
  const char ext[2] = {left, right};
  return table_->Insert(kmer, Slice(ext, 2));
}

Status DsmKmerStore::Lookup(const Slice& kmer, char* left, char* right) {
  std::string value;
  Status s = table_->Lookup(kmer, &value);
  if (!s.ok()) return s;
  if (value.size() != 2) return Status::Corrupted("kmer value size");
  *left = value[0];
  *right = value[1];
  return Status::OK();
}

Status DsmKmerStore::ClaimSeed(const Slice& kmer, bool* won) {
  // The UPC remote atomic: flag 0 → 1 claims the seed.
  return table_->CompareAndSwapFlag(kmer, 0, 1, won);
}

Status DsmKmerStore::Barrier() {
  // upc_fence + upc_barrier: drain this rank's one-sided stores, then
  // synchronize globally so every insert is visible everywhere.
  Status s = table_->Quiet();
  if (!s.ok()) return s;
  ctx_.comm.Barrier();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// The assembler
// ---------------------------------------------------------------------------

Status AssembleRank(net::RankContext& ctx, KmerStore& store,
                    const SyntheticGenome& genome, AssemblyResult* out) {
  *out = AssemblyResult{};
  const int nranks = ctx.size();

  // --- Construction: ingest my partition of the UFX records.
  Stopwatch construct;
  for (size_t i = static_cast<size_t>(ctx.rank); i < genome.ufx.size();
       i += static_cast<size_t>(nranks)) {
    const UfxRecord& rec = genome.ufx[i];
    Status s = store.Insert(rec.kmer, rec.left, rec.right);
    if (!s.ok()) return s;
    ++out->kmers_inserted;
  }
  Status s = store.Barrier();
  if (!s.ok()) return s;
  out->construct_seconds = construct.ElapsedSeconds();

  // --- Traversal: walk right from my partition of the seeds.
  Stopwatch traverse;
  const auto seeds = SeedRecords(genome);
  for (size_t i = static_cast<size_t>(ctx.rank); i < seeds.size();
       i += static_cast<size_t>(nranks)) {
    const UfxRecord* seed = seeds[i];
    bool won = false;
    s = store.ClaimSeed(seed->kmer, &won);
    if (!s.ok()) return s;
    if (!won) continue;  // another rank claimed it (UPC path)

    std::string contig = seed->kmer;
    std::string cur = seed->kmer;
    char left = 0, right = seed->right;
    while (right != 'X') {
      // Next k-mer: shift left one base, append the right extension.
      cur.erase(0, 1);
      cur.push_back(right);
      contig.push_back(right);
      s = store.Lookup(cur, &left, &right);
      if (!s.ok()) {
        return Status::Corrupted("traversal fell off the graph at " + cur);
      }
      ++out->lookups;
    }
    out->contigs.push_back(std::move(contig));
  }
  s = store.Barrier();
  if (!s.ok()) return s;
  out->traverse_seconds = traverse.ElapsedSeconds();
  return Status::OK();
}

bool VerifyAssembly(net::RankContext& ctx, const SyntheticGenome& genome,
                    const std::vector<std::string>& my_contigs) {
  std::string packed;
  for (const auto& c : my_contigs) PutLengthPrefixed(&packed, c);
  std::vector<std::string> all;
  ctx.comm.Allgather(packed, &all);

  std::vector<std::string> contigs;
  for (const auto& blob : all) {
    Slice in(blob);
    Slice one;
    while (GetLengthPrefixed(&in, &one)) contigs.push_back(one.ToString());
  }
  std::vector<std::string> truth = genome.segments;
  std::sort(contigs.begin(), contigs.end());
  std::sort(truth.begin(), truth.end());
  return contigs == truth;
}

}  // namespace papyrus::apps
