#include "apps/ufx.h"

#include <unordered_map>

#include "common/coding.h"
#include "common/crc32.h"
#include "sim/storage.h"

namespace papyrus::apps {

namespace {

bool ValidExt(char c) {
  return c == 'A' || c == 'C' || c == 'G' || c == 'T' || c == 'X';
}

// Rebuilds contig segments from UFX records by seed traversal (used when
// loading a dataset file without its generator's ground truth).
Status ReconstructSegments(int k, const std::vector<UfxRecord>& records,
                           std::vector<std::string>* segments) {
  std::unordered_map<std::string, const UfxRecord*> table;
  table.reserve(records.size());
  for (const auto& rec : records) table[rec.kmer] = &rec;
  segments->clear();
  for (const auto& rec : records) {
    if (rec.left != 'X') continue;
    std::string contig = rec.kmer;
    std::string cur = rec.kmer;
    char right = rec.right;
    while (right != 'X') {
      cur.erase(0, 1);
      cur.push_back(right);
      contig.push_back(right);
      auto it = table.find(cur);
      if (it == table.end()) {
        return Status::Corrupted("ufx: broken k-mer chain at " + cur);
      }
      right = it->second->right;
    }
    if (static_cast<int>(contig.size()) < k) {
      return Status::Corrupted("ufx: contig shorter than k");
    }
    segments->push_back(std::move(contig));
  }
  return Status::OK();
}

}  // namespace

Status WriteUfx(const std::string& path, int k,
                const std::vector<UfxRecord>& records) {
  if (k <= 0 || k > 255) return Status::InvalidArg("ufx: bad k");
  std::string out;
  out.reserve(16 + records.size() * (static_cast<size_t>(k) + 2) + 4);
  PutFixed32(&out, kUfxMagic);
  PutFixed32(&out, static_cast<uint32_t>(k));
  PutFixed64(&out, records.size());
  for (const UfxRecord& rec : records) {
    if (static_cast<int>(rec.kmer.size()) != k) {
      return Status::InvalidArg("ufx: k-mer length mismatch");
    }
    if (!ValidExt(rec.left) || !ValidExt(rec.right)) {
      return Status::InvalidArg("ufx: bad extension code");
    }
    out.append(rec.kmer);
    out.push_back(rec.left);
    out.push_back(rec.right);
  }
  PutFixed32(&out, MaskCrc(Crc32c(out.data(), out.size())));
  return sim::Storage::WriteStringToFile(path, out);
}

Status ReadUfx(const std::string& path, int* k,
               std::vector<UfxRecord>* records) {
  std::string data;
  Status s = sim::Storage::ReadFileToString(path, &data);
  if (!s.ok()) return s;
  if (data.size() < 20) return Status::Corrupted("ufx: file too small");

  const uint32_t stored =
      UnmaskCrc(DecodeFixed32(data.data() + data.size() - 4));
  if (Crc32c(data.data(), data.size() - 4) != stored) {
    return Status::Corrupted("ufx: crc mismatch");
  }

  Slice in(data.data(), data.size() - 4);
  uint32_t magic = 0, kk = 0;
  uint64_t count = 0;
  GetFixed32(&in, &magic);
  GetFixed32(&in, &kk);
  GetFixed64(&in, &count);
  if (magic != kUfxMagic) return Status::Corrupted("ufx: bad magic");
  if (kk == 0 || kk > 255) return Status::Corrupted("ufx: bad k");
  if (in.size() != count * (kk + 2)) {
    return Status::Corrupted("ufx: size mismatch");
  }

  records->clear();
  records->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    UfxRecord rec;
    rec.kmer.assign(in.data(), kk);
    in.remove_prefix(kk);
    rec.left = in[0];
    rec.right = in[1];
    in.remove_prefix(2);
    if (!ValidExt(rec.left) || !ValidExt(rec.right)) {
      return Status::Corrupted("ufx: bad extension code in record");
    }
    records->push_back(std::move(rec));
  }
  *k = static_cast<int>(kk);
  return Status::OK();
}

Status LoadOrGenerateUfx(const std::string& path, const GenomeSpec& spec,
                         SyntheticGenome* out) {
  if (sim::Storage::FileExists(path)) {
    out->segments.clear();
    out->ufx.clear();
    Status s = ReadUfx(path, &out->k, &out->ufx);
    if (!s.ok()) return s;
    return ReconstructSegments(out->k, out->ufx, &out->segments);
  }
  *out = GenerateGenome(spec);
  return WriteUfx(path, out->k, out->ufx);
}

}  // namespace papyrus::apps
