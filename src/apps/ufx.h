// UFX dataset files.
//
// The Meraculous APEX benchmark distributes its input as a UFX file
// (e.g. human-chr14.txt.ufx.bin): the k-mer set with two-letter extension
// codes, produced by the upstream k-mer analysis stage.  This module reads
// and writes this reproduction's equivalent binary format, so generated
// datasets can be saved once and shared by examples, benches, and tests —
// and so the assembler's input path is a real file, as in the paper's
// artifact.
//
// File layout (little-endian):
//   [u32 magic "UFXB"][u32 k][u64 record count]
//   count × [k bytes kmer][1 byte left ext][1 byte right ext]
//   [u32 masked CRC-32C of everything above]
//
// Extensions are 'A','C','G','T' or 'X' (no extension / contig boundary).
#pragma once

#include <string>
#include <vector>

#include "apps/genome.h"
#include "common/status.h"

namespace papyrus::apps {

inline constexpr uint32_t kUfxMagic = 0x55465842;  // "UFXB"

// Writes records (all k-mers must have length k) to `path` via the
// simulated storage layer (the file is charged to its device).
Status WriteUfx(const std::string& path, int k,
                const std::vector<UfxRecord>& records);

// Reads and CRC-verifies a UFX file.
Status ReadUfx(const std::string& path, int* k,
               std::vector<UfxRecord>* records);

// Convenience: generate-or-load.  If `path` exists it is read; otherwise
// the genome is generated from `spec`, its UFX set written to `path`, and
// the records returned.  The ground-truth segments are only available when
// freshly generated (loading a file yields segments reconstructed by
// traversal — sufficient for verification, since traversal is exact).
Status LoadOrGenerateUfx(const std::string& path, const GenomeSpec& spec,
                         SyntheticGenome* out);

}  // namespace papyrus::apps
