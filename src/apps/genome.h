// Synthetic genome / UFX dataset generator for the Meraculous reproduction.
//
// The paper's Figure 13 experiment uses the human chr14 dataset from the
// NERSC APEX Meraculous benchmark (a .ufx.bin file: k-mers with two-letter
// extension codes).  That dataset is not available offline, so this module
// generates a synthetic equivalent with the same structure (DESIGN.md §1):
//
//   * a random reference "genome" over the ACGT alphabet, assembled from
//     `contigs` independent segments (real assemblies have many contigs
//     separated by coverage gaps);
//   * its UFX set: every k-length substring (k-mer) of each segment, paired
//     with a two-letter [ACGT or X] code — the predecessor and successor
//     bases.  X marks a segment boundary (no extension), exactly the
//     convention Meraculous uses for contig ends;
//   * the UFX records are what the assembler ingests; the original segments
//     are kept as ground truth so tests can verify that de Bruijn traversal
//     reconstructs every contig byte-for-byte.
//
// The generator avoids repeated k-mers across the genome (it rejects and
// redraws segments containing duplicates) so the de Bruijn graph is a clean
// set of disjoint paths — the property the Meraculous contig-generation
// phase relies on after its UU-filtering step.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace papyrus::apps {

struct UfxRecord {
  std::string kmer;  // length k, over ACGT
  char left;         // preceding base, or 'X' at a contig start
  char right;        // following base, or 'X' at a contig end
};

struct SyntheticGenome {
  int k = 0;
  std::vector<std::string> segments;  // ground-truth contigs
  std::vector<UfxRecord> ufx;        // the k-mer set, shuffled
};

struct GenomeSpec {
  int k = 21;             // k-mer length
  int contigs = 16;       // number of independent segments
  int contig_len = 2000;  // bases per segment
  uint64_t seed = 1;
};

// Generates a genome whose k-mers are globally unique.
SyntheticGenome GenerateGenome(const GenomeSpec& spec);

// The subset of `ufx` records whose k-mer starts a contig (left == 'X') —
// the traversal seeds.
std::vector<const UfxRecord*> SeedRecords(const SyntheticGenome& genome);

}  // namespace papyrus::apps
