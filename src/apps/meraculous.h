// Meraculous-style de Bruijn graph construction and traversal (paper §5.2,
// Figures 12–13; Georganas et al., SC '14).
//
// The de Bruijn graph is a distributed hash table whose keys are k-mers and
// whose values are two-letter extension codes [ACGTX][ACGTX] — exactly
// Figure 12.  The assembler runs in two phases:
//
//   construction — every rank ingests its partition of the UFX records,
//     inserting kmer → extensions into the distributed table.  With
//     PapyrusKV this is the put-heavy phase whose asynchronous migration
//     the paper credits for the UPC gap on Cori;
//   traversal — every rank takes its partition of the seed k-mers (left
//     extension 'X' = contig start) and walks right, looking up each
//     successor k-mer, until the right extension is 'X', emitting the
//     contig.  The UPC backend additionally claims each seed with a remote
//     atomic compare-and-swap, the mechanism the paper names.
//
// KmerStore abstracts the two data substrates so the identical algorithm
// runs on PapyrusKV and on the UPC-like DSM baseline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/genome.h"
#include "baseline/dsm.h"
#include "common/status.h"
#include "core/papyruskv.h"
#include "net/runtime.h"

namespace papyrus::apps {

// The distributed k-mer table interface shared by both backends.
class KmerStore {
 public:
  virtual ~KmerStore() = default;
  // kmer → two-byte extension code {left, right}.
  virtual Status Insert(const Slice& kmer, char left, char right) = 0;
  virtual Status Lookup(const Slice& kmer, char* left, char* right) = 0;
  // Claims a contig seed; *won says whether this rank got it.  Backends
  // without remote atomics may implement this as always-won (the caller
  // partitions seeds deterministically anyway).
  virtual Status ClaimSeed(const Slice& kmer, bool* won) = 0;
  // Synchronization point after construction: all inserts visible.
  virtual Status Barrier() = 0;
  virtual const char* name() const = 0;
};

// PapyrusKV-backed table.  Uses the paper's porting approach: the same hash
// function as the UPC version is installed as the custom hash, so
// thread-data affinities match (Fig. 12).
class PapyrusKmerStore : public KmerStore {
 public:
  // Collective; call inside an initialized PapyrusKV rank.
  static Status Open(const std::string& db_name,
                     std::unique_ptr<PapyrusKmerStore>* out);
  ~PapyrusKmerStore() override;

  Status Insert(const Slice& kmer, char left, char right) override;
  Status Lookup(const Slice& kmer, char* left, char* right) override;
  Status ClaimSeed(const Slice& kmer, bool* won) override;
  Status Barrier() override;
  const char* name() const override { return "papyruskv"; }

 private:
  papyruskv_db_t db_ = -1;
  bool closed_ = false;
};

// UPC-like DSM-backed table with one-sided ops and remote atomics.
class DsmKmerStore : public KmerStore {
 public:
  static Status Open(net::RankContext& ctx,
                     std::unique_ptr<DsmKmerStore>* out);

  Status Insert(const Slice& kmer, char left, char right) override;
  Status Lookup(const Slice& kmer, char* left, char* right) override;
  Status ClaimSeed(const Slice& kmer, bool* won) override;
  Status Barrier() override;
  const char* name() const override { return "upc-dsm"; }

 private:
  explicit DsmKmerStore(net::RankContext& ctx) : ctx_(ctx) {}
  net::RankContext& ctx_;
  std::unique_ptr<baseline::DsmHashTable> table_;
};

struct AssemblyResult {
  std::vector<std::string> contigs;  // contigs this rank produced
  double construct_seconds = 0;
  double traverse_seconds = 0;
  uint64_t kmers_inserted = 0;
  uint64_t lookups = 0;
};

// Runs the full assembler on this rank: ingests ufx records with index ≡
// rank (mod nranks), barriers, then traverses the seeds with index ≡ rank
// (mod nranks).  Collective.
Status AssembleRank(net::RankContext& ctx, KmerStore& store,
                    const SyntheticGenome& genome, AssemblyResult* out);

// Collectively gathers every rank's contigs to all ranks and checks them
// against the genome's ground-truth segments (same multiset).  Returns
// true on an exact match.
bool VerifyAssembly(net::RankContext& ctx, const SyntheticGenome& genome,
                    const std::vector<std::string>& my_contigs);

}  // namespace papyrus::apps
