#include "apps/genome.h"

#include <algorithm>
#include <unordered_set>

#include "common/random.h"

namespace papyrus::apps {

namespace {
constexpr char kBases[] = "ACGT";
}

SyntheticGenome GenerateGenome(const GenomeSpec& spec) {
  SyntheticGenome g;
  g.k = spec.k;
  Rng rng(spec.seed);

  std::unordered_set<std::string> seen_kmers;
  g.segments.reserve(static_cast<size_t>(spec.contigs));

  for (int c = 0; c < spec.contigs; ++c) {
    // Draw segments until one has no k-mer collision with the genome so
    // far; grow base-by-base, redrawing a base when it would repeat a
    // k-mer (bounded retries, then restart the segment).
    for (int attempt = 0; attempt < 64; ++attempt) {
      std::string seg;
      seg.reserve(static_cast<size_t>(spec.contig_len));
      std::vector<std::string> added;
      bool dead_end = false;
      while (static_cast<int>(seg.size()) < spec.contig_len) {
        bool placed = false;
        for (int tries = 0; tries < 8 && !placed; ++tries) {
          const char base = kBases[rng.Uniform(4)];
          seg.push_back(base);
          if (static_cast<int>(seg.size()) >= spec.k) {
            std::string kmer = seg.substr(seg.size() - spec.k);
            if (seen_kmers.count(kmer)) {
              seg.pop_back();
              continue;
            }
            seen_kmers.insert(kmer);
            added.push_back(std::move(kmer));
          }
          placed = true;
        }
        if (!placed) {
          dead_end = true;
          break;
        }
      }
      if (!dead_end) {
        g.segments.push_back(std::move(seg));
        break;
      }
      for (const auto& kmer : added) seen_kmers.erase(kmer);
    }
  }

  // Emit UFX records.
  for (const std::string& seg : g.segments) {
    const int n = static_cast<int>(seg.size()) - spec.k + 1;
    for (int i = 0; i < n; ++i) {
      UfxRecord rec;
      rec.kmer = seg.substr(static_cast<size_t>(i), static_cast<size_t>(spec.k));
      rec.left = i == 0 ? 'X' : seg[static_cast<size_t>(i - 1)];
      rec.right = i == n - 1 ? 'X' : seg[static_cast<size_t>(i + spec.k)];
      g.ufx.push_back(std::move(rec));
    }
  }

  // Shuffle so ingestion order is uncorrelated with genome position (as in
  // real UFX files produced from randomly ordered reads).
  for (size_t i = g.ufx.size(); i > 1; --i) {
    std::swap(g.ufx[i - 1], g.ufx[rng.Uniform(i)]);
  }
  return g;
}

std::vector<const UfxRecord*> SeedRecords(const SyntheticGenome& genome) {
  std::vector<const UfxRecord*> seeds;
  for (const UfxRecord& rec : genome.ufx) {
    if (rec.left == 'X') seeds.push_back(&rec);
  }
  return seeds;
}

}  // namespace papyrus::apps
