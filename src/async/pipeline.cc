#include "async/pipeline.h"

#include <cassert>
#include <utility>

#include "common/env.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/runtime.h"
#include "obs/flight.h"
#include "obs/trace.h"
#include "repl/replicator.h"

namespace papyrus::async {

using core::GetMultiOp;
using core::GetMultiResult;
using core::KvRecord;

// ---------------------------------------------------------------------------
// OpState
// ---------------------------------------------------------------------------

void OpState::Complete(Status s) {
  {
    MutexLock lock(&mu_);
    status_ = std::move(s);
    done_ = true;
  }
  cv_.NotifyAll();
}

void OpState::CompleteValue(Status s, std::string value) {
  value_ = std::move(value);
  {
    MutexLock lock(&mu_);
    status_ = std::move(s);
    result_ = Result::kValue;
    done_ = true;
  }
  cv_.NotifyAll();
}

void OpState::CompleteResp(Status s, core::GetResp resp) {
  resp_ = std::move(resp);
  {
    MutexLock lock(&mu_);
    status_ = std::move(s);
    result_ = Result::kResp;
    done_ = true;
  }
  cv_.NotifyAll();
}

Status OpState::Wait() {
  MutexLock lock(&mu_);
  while (!done_) cv_.Wait(&mu_);
  return status_;
}

bool OpState::done() const {
  MutexLock lock(&mu_);
  return done_;
}

OpState::Result OpState::result() const {
  MutexLock lock(&mu_);
  return result_;
}

OpHandle CompletedOp(Status s) {
  auto h = std::make_shared<OpState>();
  h->Complete(std::move(s));
  return h;
}

OpHandle CompletedValueOp(Status s, std::string value) {
  auto h = std::make_shared<OpState>();
  h->CompleteValue(std::move(s), std::move(value));
  return h;
}

// ---------------------------------------------------------------------------
// AsyncPipeline
// ---------------------------------------------------------------------------

AsyncPipeline::AsyncPipeline(core::KvRuntime& rt) : rt_(rt) {
  obs::Registry& reg = rt_.metrics();
  g_depth_ = &reg.GetGauge("async.queue_depth");
  g_inflight_ = &reg.GetGauge("async.inflight");
  h_put_batch_ = &reg.GetHistogram("async.batch_size");
  h_get_batch_ = &reg.GetHistogram("async.get_batch_size");
  h_repl_batch_ = &reg.GetHistogram("async.repl_batch_size");
  c_op_errors_ = &reg.GetCounter("async.op_errors");
  c_frames_ = &reg.GetCounter("async.frames");
  h_put_op_us_ = &reg.GetHistogram("async.put_op_us");
  h_get_op_us_ = &reg.GetHistogram("async.get_op_us");
}

void AsyncPipeline::RecordOpLatency(const Submission& s) {
  if (s.kind == Submission::Kind::kRepl) return;  // no per-op waiter
  obs::Histogram* h =
      s.kind == Submission::Kind::kPut ? h_put_op_us_ : h_get_op_us_;
  h->Record(NowMicros() - s.submitted_at_us);
}

void AsyncPipeline::Start() {
  if (started_) return;
  if (auto v = EnvInt("PAPYRUSKV_BATCH_MAX"); v && *v > 0) {
    batch_max_ = static_cast<size_t>(*v);
  }
  ops_lane_.name = "async";
  repl_lane_.name = "async_repl";
  // The accumulation window is an ops-lane bench knob only: a windowed repl
  // lane would add its delay to every quorum-deferred put ack.
  if (auto v = EnvInt("PAPYRUSKV_BATCH_WINDOW_US"); v && *v > 0) {
    ops_lane_.window_us = static_cast<uint64_t>(*v);
  }
  started_ = true;
  ops_lane_.thread = std::thread([this] { Loop(&ops_lane_); });
  repl_lane_.thread = std::thread([this] { Loop(&repl_lane_); });
}

void AsyncPipeline::Stop() {
  if (!started_) return;
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  ops_lane_.cv.NotifyAll();
  repl_lane_.cv.NotifyAll();
  ops_lane_.thread.join();
  repl_lane_.thread.join();
  started_ = false;
}

void AsyncPipeline::Enqueue(int dst, Submission s) {
  Lane& lane =
      s.kind == Submission::Kind::kRepl ? repl_lane_ : ops_lane_;
  {
    MutexLock lock(&mu_);
    lane.queues[dst].push_back(std::move(s));
    ++lane.queued;
    g_depth_->Set(static_cast<int64_t>(ops_lane_.queued + repl_lane_.queued));
  }
  lane.cv.NotifyOne();
}

OpHandle AsyncPipeline::SubmitPut(int dst, uint32_t dbid, const Slice& key,
                                  const Slice& value, bool tombstone) {
  Submission s;
  s.kind = Submission::Kind::kPut;
  s.dbid = dbid;
  s.key = key.ToString();
  s.value = value.ToString();
  s.tombstone = tombstone;
  s.submitted_at_us = NowMicros();
  s.handle = std::make_shared<OpState>();
  OpHandle h = s.handle;
  Enqueue(dst, std::move(s));
  return h;
}

OpHandle AsyncPipeline::SubmitGet(int dst, uint32_t dbid, const Slice& key,
                                  bool full_search) {
  Submission s;
  s.kind = Submission::Kind::kGet;
  s.dbid = dbid;
  s.key = key.ToString();
  s.full_search = full_search;
  s.submitted_at_us = NowMicros();
  s.handle = std::make_shared<OpState>();
  OpHandle h = s.handle;
  Enqueue(dst, std::move(s));
  return h;
}

void AsyncPipeline::SubmitReplAppend(int dst, uint32_t dbid, uint32_t primary,
                                     uint64_t epoch, uint64_t seq, bool reset,
                                     uint64_t flushed_through,
                                     const Slice& key, const Slice& value,
                                     bool tombstone) {
  Submission s;
  s.kind = Submission::Kind::kRepl;
  s.dbid = dbid;
  s.key = key.ToString();
  s.value = value.ToString();
  s.tombstone = tombstone;
  s.repl_primary = primary;
  s.repl_epoch = epoch;
  s.repl_seq = seq;
  s.repl_reset = reset;
  s.repl_flushed = flushed_through;
  s.submitted_at_us = NowMicros();
  Enqueue(dst, std::move(s));
}

void AsyncPipeline::Drain() {
  MutexLock lock(&mu_);
  while (ops_lane_.queued + ops_lane_.inflight + repl_lane_.queued +
             repl_lane_.inflight >
         0) {
    drain_cv_.Wait(&mu_);
  }
}

void AsyncPipeline::Loop(Lane* lane) {
  rt_.AdoptObservability(lane->name);
  for (;;) {
    std::map<int, std::deque<Submission>> work;
    size_t count = 0;
    {
      MutexLock lock(&mu_);
      while (!stop_ && lane->queued == 0) lane->cv.Wait(&mu_);
      if (lane->queued == 0) return;  // stop_ set and nothing left to flush
      // Optional accumulation window: trade latency for larger batches
      // (benchmark knob; 0 = rely on natural batching under load).
      if (lane->window_us > 0) {
        const uint64_t deadline = NowMicros() + lane->window_us;
        while (!stop_) {
          const uint64_t now = NowMicros();
          if (now >= deadline) break;
          lane->cv.WaitForMicros(&mu_, deadline - now);
        }
      }
      work.swap(lane->queues);
      count = lane->queued;
      lane->inflight += count;
      lane->queued = 0;
      g_depth_->Set(
          static_cast<int64_t>(ops_lane_.queued + repl_lane_.queued));
      g_inflight_->Set(
          static_cast<int64_t>(ops_lane_.inflight + repl_lane_.inflight));
    }
    ProcessCycle(std::move(work));
    {
      MutexLock lock(&mu_);
      lane->inflight -= count;
      g_inflight_->Set(
          static_cast<int64_t>(ops_lane_.inflight + repl_lane_.inflight));
    }
    drain_cv_.NotifyAll();
  }
}

void AsyncPipeline::ProcessCycle(std::map<int, std::deque<Submission>> work) {
  if (rt_.crashed()) {
    // A crashed rank emits no traffic (§4.2 failure model); every queued op
    // still completes so no waiter can hang.
    for (auto& [dst, q] : work) {
      for (Submission& s : q) {
        c_op_errors_->Inc();
        if (!s.handle) continue;  // repl appends: no waiter, the stream dies
        RecordOpLatency(s);
        s.handle->Complete(Status(PAPYRUSKV_ERR, "rank crashed (simulated)"));
      }
    }
    return;
  }

  const fault::RetryPolicy& retry = rt_.retry();
  const uint32_t my_group =
      static_cast<uint32_t>(rt_.layout().GroupOf(rt_.rank()));

  // One encoded wire frame: consecutive same-kind, same-db submissions for
  // one destination, capped at batch_max_.
  using Kind = Submission::Kind;
  struct Frame {
    int dst = 0;
    Kind kind = Kind::kPut;
    uint32_t dbid = 0;
    int tag = 0;
    std::string payload;
    std::vector<Submission> ops;
    std::unique_ptr<obs::OpSpan> rpc;  // open until the frame is acked
  };
  auto op_name = [](Kind k) {
    return k == Kind::kPut    ? "put_batch"
           : k == Kind::kGet  ? "get_multi"
                              : "repl_append";
  };
  // Frames to one destination form an ordered chain, processed below under
  // the SDCB rule: frame N+1 is not put on the wire until frame N is acked.
  std::map<int, std::vector<Frame>> chains;
  for (auto& [dst, q] : work) {
    assert(dst != rt_.rank() && "pipeline never targets the local rank");
    size_t i = 0;
    while (i < q.size()) {
      Frame f;
      f.dst = dst;
      f.kind = q[i].kind;
      f.dbid = q[i].dbid;
      const size_t begin = i;
      while (i < q.size() && (i - begin) < batch_max_ &&
             q[i].kind == f.kind && q[i].dbid == f.dbid) {
        if (f.kind == Kind::kRepl && i != begin) {
          // A replication frame is one contiguous run of one stream
          // incarnation: an epoch change, a sequence discontinuity, or a
          // fresh resync marker starts a new frame (the follower acks each
          // frame by its (epoch, first_seq..) coordinates).
          const Submission& prev = f.ops.back();
          if (q[i].repl_reset || q[i].repl_epoch != prev.repl_epoch ||
              q[i].repl_seq != prev.repl_seq + 1) {
            break;
          }
        }
        f.ops.push_back(std::move(q[i]));
        ++i;
      }
      f.tag = rt_.AllocRespTag();
      // The RPC leg of the whole frame: each op serviced by the remote
      // handler becomes a flow-linked child of this span, so the merged
      // timeline shows N coalesced ops sharing one wire round trip.
      f.rpc = std::make_unique<obs::OpSpan>(
          "net",
          f.kind == Kind::kPut   ? "put_batch.rpc"
          : f.kind == Kind::kGet ? "get_multi.rpc"
                                 : "repl_append.rpc",
          obs::OpSpan::kDetached);
      f.rpc->MarkFlowOut();
      if (f.kind == Kind::kPut) {
        std::vector<KvRecord> records;
        records.reserve(f.ops.size());
        for (const Submission& s : f.ops) {
          KvRecord r;
          r.key = s.key;
          r.value = s.value;
          r.tombstone = s.tombstone;
          records.push_back(std::move(r));
        }
        h_put_batch_->Record(static_cast<uint64_t>(records.size()));
        f.payload = EncodePutBatch(f.dbid, static_cast<uint32_t>(f.tag),
                                   records, f.rpc->context());
      } else if (f.kind == Kind::kGet) {
        std::vector<GetMultiOp> ops;
        ops.reserve(f.ops.size());
        for (const Submission& s : f.ops) {
          GetMultiOp op;
          op.key = s.key;
          op.full_search = s.full_search;
          ops.push_back(std::move(op));
        }
        h_get_batch_->Record(static_cast<uint64_t>(ops.size()));
        f.payload = EncodeGetMulti(f.dbid, static_cast<uint32_t>(f.tag),
                                   my_group, ops, f.rpc->context());
      } else {
        std::vector<KvRecord> records;
        records.reserve(f.ops.size());
        for (const Submission& s : f.ops) {
          KvRecord r;
          r.key = s.key;
          r.value = s.value;
          r.tombstone = s.tombstone;
          records.push_back(std::move(r));
        }
        core::ReplAppendMeta meta;
        meta.primary = f.ops.front().repl_primary;
        meta.epoch = f.ops.front().repl_epoch;
        meta.first_seq = f.ops.front().repl_seq;
        meta.flushed_through = f.ops.back().repl_flushed;
        meta.reset = f.ops.front().repl_reset;
        h_repl_batch_->Record(static_cast<uint64_t>(records.size()));
        f.payload = core::EncodeReplAppend(f.dbid,
                                           static_cast<uint32_t>(f.tag), meta,
                                           records, f.rpc->context());
      }
      chains[dst].push_back(std::move(f));
    }
  }

  obs::FlightRecorder& flight = rt_.flight();
  auto send_frame = [&](const Frame& f) {
    c_frames_->Inc();
    flight.Record(obs::FlightKind::kOpBegin, op_name(f.kind), f.dst,
                  retry.max_attempts);
    rt_.SendRequest(f.dst,
                    f.kind == Kind::kPut   ? core::kOpPutBatch
                    : f.kind == Kind::kGet ? core::kOpGetMulti
                                           : core::kOpReplAppend,
                    f.payload);
  };
  // Completes every op of a failed frame with one shared status; a failed
  // replication frame instead fails the follower out of the shard's quorum
  // accounting (no per-op waiters to complete).
  auto fail_frame = [&](Frame& f, const Status& s) {
    if (f.kind == Kind::kRepl) {
      c_op_errors_->Inc();
      if (core::DbShardPtr db = rt_.Find(static_cast<int>(f.dbid))) {
        if (repl::Replicator* r = db->replicator()) r->OnAppendFailed(f.dst);
      }
      return;
    }
    for (Submission& sub : f.ops) {
      c_op_errors_->Inc();
      RecordOpLatency(sub);
      sub.handle->Complete(s);
    }
  };

  // Only each chain's *head* frame goes on the wire up front: frames to
  // distinct destinations overlap, amortizing the round trip across the
  // cycle (same idiom as the migration dispatcher), but frame N+1 of a
  // chain is released only by frame N's ack below.  This is what makes the
  // bounded re-send safe (DESIGN.md §8): the one frame per destination
  // that can be retried is always the newest one sent there, so a retry
  // re-applies at worst its own data — never data an earlier frame
  // committed after it (SDCB survives retries).
  for (auto& [dst, chain] : chains) send_frame(chain.front());

  for (auto& [dst, chain] : chains) {
    bool dst_down = false;  // an earlier frame to dst exhausted its retries
    for (size_t fi = 0; fi < chain.size(); ++fi) {
      Frame& f = chain[fi];
      const char* opname = op_name(f.kind);
      if (dst_down) {
        // Never sent: the timed-out frame ahead of this one may still be
        // sitting unapplied in the peer's mailbox, and sending past it
        // could commit data out of submission order.
        f.rpc.reset();
        fail_frame(f, Status::Timeout(
                          "rank " + std::to_string(dst) + " unresponsive; " +
                          opname + " not sent (earlier frame unacked)"));
        continue;
      }
      net::Message ack;
      bool acked =
          rt_.RecvResponseFor(f.dst, f.tag, retry.reply_timeout_us, &ack);
      for (int attempt = 1; attempt < retry.max_attempts && !acked;
           ++attempt) {
        rt_.metrics().GetCounter("net.req.retries").Inc();
        flight.Record(obs::FlightKind::kRetry, opname, f.dst, attempt);
        PreciseSleepMicros(retry.BackoffUs(attempt));
        rt_.SendRequest(f.dst,
                        f.kind == Kind::kPut   ? core::kOpPutBatch
                        : f.kind == Kind::kGet ? core::kOpGetMulti
                                               : core::kOpReplAppend,
                        f.payload);
        acked =
            rt_.RecvResponseFor(f.dst, f.tag, retry.reply_timeout_us, &ack);
      }
      f.rpc.reset();  // close the frame's RPC span at ack (or give-up) time
      if (!acked) {
        rt_.metrics().GetCounter("net.req.timeouts").Inc();
        flight.Record(obs::FlightKind::kTimeout, opname, f.dst,
                      retry.max_attempts);
        rt_.MarkSuspect(f.dst);
        PLOG_ERROR << opname << " to rank " << f.dst
                   << " unacknowledged after " << retry.max_attempts
                   << " attempts";
        Status ds = flight.TriggerDump("request timeout");
        if (!ds.ok()) {
          PLOG_WARN << "flight dump failed: " << ds.ToString();
        }
        fail_frame(f, Status::Timeout(
                          "no reply from rank " + std::to_string(f.dst) +
                          " for " + opname + " after " +
                          std::to_string(retry.max_attempts) + " attempts"));
        dst_down = true;  // the unsent rest of this chain fails above
        continue;
      }
      // The ack proves the handler applied this frame; the next frame in
      // this destination's chain may now go on the wire.
      if (fi + 1 < chain.size()) send_frame(chain[fi + 1]);
      flight.Record(obs::FlightKind::kOpEnd, opname, f.dst);
      if (f.kind == Kind::kRepl) {
        uint64_t epoch = 0;
        uint64_t acked_seq = 0;
        bool ok = false;
        if (!core::DecodeReplAppendAck(ack.payload, &epoch, &acked_seq,
                                       &ok)) {
          fail_frame(f, Status::Corrupted("bad repl append ack"));
          continue;
        }
        // Hand the follower's (epoch, seq) progress — or its NACK — to the
        // shard's replicator; a NACK triggers an inline resync pump, whose
        // submissions land in the next cycle's queues.
        if (core::DbShardPtr db = rt_.Find(static_cast<int>(f.dbid))) {
          if (repl::Replicator* r = db->replicator()) {
            r->OnAppendAck(f.dst, epoch, acked_seq, ok);
          }
        }
        continue;
      }
      if (f.kind == Kind::kPut) {
        std::vector<int32_t> statuses;
        if (!core::DecodePutBatchAck(ack.payload, &statuses) ||
            statuses.size() != f.ops.size()) {
          fail_frame(f, Status::Corrupted("bad put batch ack"));
          continue;
        }
        for (size_t i = 0; i < f.ops.size(); ++i) {
          if (statuses[i] != PAPYRUSKV_SUCCESS) c_op_errors_->Inc();
          RecordOpLatency(f.ops[i]);
          f.ops[i].handle->Complete(Status(statuses[i]));
        }
      } else {
        std::vector<GetMultiResult> results;
        if (!core::DecodeGetMultiResp(ack.payload, &results) ||
            results.size() != f.ops.size()) {
          fail_frame(f, Status::Corrupted("bad get multi response"));
          continue;
        }
        for (size_t i = 0; i < f.ops.size(); ++i) {
          if (results[i].status != PAPYRUSKV_SUCCESS) c_op_errors_->Inc();
          RecordOpLatency(f.ops[i]);
          f.ops[i].handle->CompleteResp(Status(results[i].status),
                                        std::move(results[i].resp));
        }
      }
    }
  }
}

}  // namespace papyrus::async
