// Submission/completion pipeline with same-destination request batching
// (DESIGN.md §9).
//
// KVell-style shared-nothing queues layered between the public API and the
// wire: the application (or DbShard's synchronous paths, reimplemented as
// submit+wait) enqueues operations per destination rank; a pipeline worker
// drains the queues, coalescing consecutive same-kind operations for one
// destination into a single `put_batch` / `get_multi` frame, so N remote
// operations share one wire round trip instead of N.  Replication-stream
// appends run on their own lane (second worker thread) — see the Lane
// comment below for why sharing the ops lane would deadlock under the
// quorum commit rule.
// While one cycle's frames are in flight, new submissions accumulate — the
// pipeline batches *naturally* under load, no timer required (an optional
// PAPYRUSKV_BATCH_WINDOW_US accumulation window exists for benchmarking).
//
// Ordering (SDCB): each destination's queue preserves submission order, and
// the frames it breaks into form an ordered *chain* — frame N+1 is not put
// on the wire until frame N's ack arrives.  Chains to distinct destinations
// overlap (every chain's head frame is sent up front), but within one
// destination the only frame that can ever be retried is the newest one on
// the wire, so a retry can never re-apply data that a later frame to the
// same destination already committed: per-key ordering within a
// destination queue is exactly submission order, even across retries.
// Frames never mix op kinds or databases; a kind/db change breaks the
// frame.
//
// Failure semantics: retry/timeout is per *frame* (re-sending the chain's
// in-flight frame is idempotent, like migration chunks); per-op errors
// travel back in the batched ack, so a partially failed batch surfaces
// exactly which ops failed.  A frame unacknowledged after
// retry().max_attempts completes all of its ops with
// PAPYRUSKV_ERR_TIMEOUT and marks the peer suspect; the unsent frames
// behind it in the same chain fail the same way *without* being sent —
// the stuck frame may still be sitting in the peer's mailbox, and sending
// past it would reorder committed data.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/slice.h"
#include "common/status.h"
#include "core/wire.h"
#include "obs/metrics.h"

namespace papyrus::core {
class KvRuntime;
}  // namespace papyrus::core

namespace papyrus::async {

// Completion handle for one submitted operation.  Created by the pipeline
// (or already-completed for inline-resolved ops); waited on by exactly one
// consumer.  Gets carry their result payload: either a resolved value
// (kValue — the op never touched the wire) or the owner's GetResp (kResp —
// the caller runs §2.7 post-processing via DbShard::FinishGet).
class OpState {
 public:
  enum class Result { kNone, kValue, kResp };

  void Complete(Status s);
  void CompleteValue(Status s, std::string value);
  void CompleteResp(Status s, core::GetResp resp);

  // Blocks until completion; returns the operation's status.
  Status Wait();
  bool done() const;

  // Valid only after Wait() returned.
  Result result() const;
  const std::string& value() const { return value_; }
  // Moves the response out (single-consumer; call at most once).
  core::GetResp TakeResp() { return std::move(resp_); }

 private:
  // Leaf lock: guards one op's completion state only.
  mutable Mutex mu_{"async_op_mu"};
  CondVar cv_;
  bool done_ GUARDED_BY(mu_) = false;
  Status status_ GUARDED_BY(mu_);
  Result result_ GUARDED_BY(mu_) = Result::kNone;
  // Written once before done_ flips; read only after Wait() — no lock
  // needed on the consumer side.
  core::GetResp resp_;
  std::string value_;
};

using OpHandle = std::shared_ptr<OpState>;

// Already-completed handles for ops resolved without the pipeline (local
// puts, staged relaxed puts, gets decided from local memory).
OpHandle CompletedOp(Status s);
OpHandle CompletedValueOp(Status s, std::string value);

class AsyncPipeline {
 public:
  explicit AsyncPipeline(core::KvRuntime& rt);

  // Reads PAPYRUSKV_BATCH_MAX / PAPYRUSKV_BATCH_WINDOW_US and launches the
  // pipeline thread.  Stop() drains remaining submissions, then joins.
  void Start();
  void Stop();

  // Enqueue one remote put/delete (sequential mode) for `dst`.
  OpHandle SubmitPut(int dst, uint32_t dbid, const Slice& key,
                     const Slice& value, bool tombstone);
  // Enqueue one remote get for `dst`; full_search forces the owner to
  // search its SSTables even for a same-group caller (§2.7 fallback).
  OpHandle SubmitGet(int dst, uint32_t dbid, const Slice& key,
                     bool full_search);

  // Enqueue one replication-stream append for follower `dst` (DESIGN.md
  // §12).  Fire-and-forget at the submission layer — there is no OpHandle;
  // the frame's ack (or give-up) is delivered to the shard's Replicator as
  // OnAppendAck/OnAppendFailed from the pipeline thread.  Consecutive
  // submissions with the same epoch and contiguous sequence numbers coalesce
  // into one kOpReplAppend frame; `reset` starts a frame (resync marker).
  void SubmitReplAppend(int dst, uint32_t dbid, uint32_t primary,
                        uint64_t epoch, uint64_t seq, bool reset,
                        uint64_t flushed_through, const Slice& key,
                        const Slice& value, bool tombstone);

  // Blocks until every submitted op has completed (fence semantics for
  // async operations; see DbShard::Fence).
  void Drain();

 private:
  struct Submission {
    enum class Kind { kPut, kGet, kRepl };
    Kind kind;
    uint32_t dbid = 0;
    std::string key;
    std::string value;
    bool tombstone = false;
    bool full_search = false;
    // kRepl stream coordinates (see wire.h ReplAppendMeta).
    uint32_t repl_primary = 0;
    uint64_t repl_epoch = 0;
    uint64_t repl_seq = 0;
    uint64_t repl_flushed = 0;
    bool repl_reset = false;
    uint64_t submitted_at_us = 0;  // stamped at Submit* for op latency
    OpHandle handle;               // null for kRepl (no per-op waiter)
  };

  // One worker lane: its own thread, per-destination queues and in-flight
  // accounting (all guarded by mu_; a nested struct cannot name the outer
  // mutex in an annotation).  The pipeline runs TWO lanes:
  //
  //   ops   put/get frames.  Their acks may be *deferred* by the remote
  //         handler until the applied data reaches replication quorum
  //         (DESIGN.md §12), i.e. until the remote's own repl_append frames
  //         are acked.
  //   repl  replication-stream frames.  Followers ack immediately after the
  //         shadow apply — never deferred.
  //
  // The split is what makes the quorum commit rule deadlock-free: if repl
  // frames shared the ops lane, rank A's lane could block awaiting a put
  // ack that rank B defers until B's repl frames — queued behind B's
  // equally blocked lane — reach rank C, closing a cross-rank wait cycle
  // that only timeouts would break.  The repl lane never waits on anything
  // that waits back on it.
  struct Lane {
    const char* name = "";  // AdoptObservability tag for the worker thread
    uint64_t window_us = 0;
    std::thread thread;
    CondVar cv;  // submissions / stop
    std::map<int, std::deque<Submission>> queues;
    size_t queued = 0;
    size_t inflight = 0;
  };

  void Loop(Lane* lane);
  // Builds, sends, and collects acks for one swap of a lane's queues.
  void ProcessCycle(std::map<int, std::deque<Submission>> work);
  void Enqueue(int dst, Submission s);  // routes on s.kind
  // Records submit→completion latency (async.put_op_us / async.get_op_us);
  // call immediately before completing the handle.
  void RecordOpLatency(const Submission& s);

  core::KvRuntime& rt_;
  size_t batch_max_ = 256;

  bool started_ = false;  // Start/Stop called from the owning rank thread

  Mutex mu_{"async_pipe_mu"};
  CondVar drain_cv_;  // every lane's queued + inflight reached zero
  bool stop_ GUARDED_BY(mu_) = false;
  // Queue/counter fields guarded by mu_; name/window/thread are set before
  // the worker starts and joined after it stops, so they need no lock.
  Lane ops_lane_;
  Lane repl_lane_;

  // Cached metrics (resolved once; see obs/metrics.h).
  obs::Gauge* g_depth_;            // async.queue_depth
  obs::Gauge* g_inflight_;         // async.inflight (dispatched, unacked)
  obs::Histogram* h_put_batch_;    // async.batch_size
  obs::Histogram* h_get_batch_;    // async.get_batch_size
  obs::Histogram* h_repl_batch_;   // async.repl_batch_size
  obs::Counter* c_op_errors_;      // async.op_errors
  obs::Counter* c_frames_;         // async.frames
  // True per-op latency, submit → completion (the batched ack landing).
  // The kv.put_us/get_us histograms cover the synchronous submit+wait
  // path; the async entry points record only kv.*_submit_us at enqueue.
  obs::Histogram* h_put_op_us_;    // async.put_op_us
  obs::Histogram* h_get_op_us_;    // async.get_op_us
};

}  // namespace papyrus::async
