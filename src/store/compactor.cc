#include "store/compactor.h"

#include <queue>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/format.h"
#include "store/sstable.h"

namespace papyrus::store {

namespace {

// A sequential cursor over one input table.
struct Cursor {
  SSTablePtr table;
  size_t pos = 0;
  std::string key;
  std::string value;
  uint8_t flags = 0;

  bool exhausted() const { return pos >= table->count(); }

  Status Load() {
    return table->ReadEntry(pos, &key, &value, &flags);
  }
};

// Heap order: smallest key first; among equal keys, highest SSID first so
// the newest version pops first and older ones are skipped.
struct HeapCmp {
  bool operator()(const Cursor* a, const Cursor* b) const {
    const int c = Slice(a->key).compare(Slice(b->key));
    if (c != 0) return c > 0;
    return a->table->ssid() < b->table->ssid();
  }
};

}  // namespace

Status MergeTables(Manifest& manifest,
                   const std::vector<uint64_t>& input_ssids,
                   bool drop_tombstones, int bloom_bits_per_key,
                   CompactionStats* stats) {
  obs::Registry& reg = obs::Current();
  obs::ScopedLatency lat(&reg.GetHistogram("store.compaction_us"));
  obs::TraceSpan span("store", "compaction");
  uint64_t read_bytes = 0, written_bytes = 0;

  CompactionStats local;
  local.input_tables = input_ssids.size();

  std::vector<Cursor> cursors(input_ssids.size());
  size_t expected = 0;
  for (size_t i = 0; i < input_ssids.size(); ++i) {
    Status s = manifest.GetReader(input_ssids[i], &cursors[i].table);
    if (!s.ok()) return s;
    expected += cursors[i].table->count();
    local.input_entries += cursors[i].table->count();
  }

  std::priority_queue<Cursor*, std::vector<Cursor*>, HeapCmp> heap;
  for (auto& c : cursors) {
    if (c.exhausted()) continue;
    Status s = c.Load();
    if (!s.ok()) return s;
    heap.push(&c);
  }

  const uint64_t out_ssid = manifest.NextSsid();
  SSTableBuilder builder(manifest.dir(), out_ssid, expected,
                         bloom_bits_per_key);

  std::string last_emitted_key;
  bool any_emitted = false;
  while (!heap.empty()) {
    Cursor* c = heap.top();
    heap.pop();

    const bool duplicate = any_emitted && c->key == last_emitted_key;
    read_bytes += c->key.size() + c->value.size();
    if (duplicate) {
      ++local.dropped_stale;
    } else if (drop_tombstones && (c->flags & kFlagTombstone)) {
      ++local.dropped_tombstones;
      // Still record the key so older versions of it are dropped as stale.
      last_emitted_key = c->key;
      any_emitted = true;
    } else {
      Status s = builder.Add(c->key, c->value, c->flags);
      if (!s.ok()) return s;
      last_emitted_key = c->key;
      any_emitted = true;
      ++local.output_entries;
      written_bytes += c->key.size() + c->value.size();
    }

    ++c->pos;
    if (!c->exhausted()) {
      Status s = c->Load();
      if (!s.ok()) return s;
      heap.push(c);
    }
  }

  Status s = builder.Finish();
  if (!s.ok()) return s;
  s = manifest.ReplaceTables(input_ssids, {out_ssid});
  if (!s.ok()) return s;
  reg.GetCounter("store.compaction_read_bytes").Inc(read_bytes);
  reg.GetCounter("store.compaction_written_bytes").Inc(written_bytes);
  reg.GetCounter("store.compaction_dropped_entries")
      .Inc(local.dropped_stale + local.dropped_tombstones);
  if (stats) *stats = local;
  return Status::OK();
}

Status MaybeCompact(Manifest& manifest, uint64_t new_ssid, uint64_t trigger,
                    int bloom_bits_per_key, CompactionStats* stats) {
  if (trigger <= 1 || new_ssid % trigger != 0) return Status::OK();
  std::vector<uint64_t> live = manifest.LiveSsids();  // descending
  if (live.size() < 2) return Status::OK();
  // Full-set merge: tombstones can be purged.
  return MergeTables(manifest, live, /*drop_tombstones=*/true,
                     bloom_bits_per_key, stats);
}

}  // namespace papyrus::store
