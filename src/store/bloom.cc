#include "store/bloom.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/hash.h"
#include "store/format.h"

namespace papyrus::store {

BloomFilter::BloomFilter(size_t expected_keys, int bits_per_key) {
  num_bits_ = std::max<uint64_t>(64, expected_keys *
                                         static_cast<uint64_t>(bits_per_key));
  // k = ln2 * bits/key, clamped to a sane range.
  num_hashes_ = std::clamp(static_cast<int>(bits_per_key * 0.69), 1, 30);
  bits_.assign((num_bits_ + 7) / 8, 0);
}

void BloomFilter::Add(const Slice& key) {
  const uint64_t h1 = Fnv1a64(key);
  const uint64_t h2 = Mix64(h1);
  for (int i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % num_bits_;
    bits_[bit >> 3] |= static_cast<uint8_t>(1u << (bit & 7));
  }
}

bool BloomFilter::MayContain(const Slice& key) const {
  if (num_bits_ == 0) return true;  // degenerate filter rejects nothing
  const uint64_t h1 = Fnv1a64(key);
  const uint64_t h2 = Mix64(h1);
  for (int i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % num_bits_;
    if ((bits_[bit >> 3] & (1u << (bit & 7))) == 0) return false;
  }
  return true;
}

std::string BloomFilter::Serialize() const {
  std::string out;
  out.reserve(16 + bits_.size() + 4);
  PutFixed32(&out, kBloomMagic);
  PutFixed32(&out, static_cast<uint32_t>(num_hashes_));
  PutFixed64(&out, num_bits_);
  out.append(reinterpret_cast<const char*>(bits_.data()), bits_.size());
  PutFixed32(&out, MaskCrc(Crc32c(out.data(), out.size())));
  return out;
}

Status BloomFilter::Parse(const Slice& data, BloomFilter* out) {
  if (data.size() < 20) return Status::Corrupted("bloom file too small");
  const uint32_t stored_crc = UnmaskCrc(DecodeFixed32(
      data.data() + data.size() - 4));
  if (Crc32c(data.data(), data.size() - 4) != stored_crc) {
    return Status::Corrupted("bloom crc mismatch");
  }
  Slice in = data;
  uint32_t magic = 0, hashes = 0;
  uint64_t bits = 0;
  GetFixed32(&in, &magic);
  GetFixed32(&in, &hashes);
  GetFixed64(&in, &bits);
  if (magic != kBloomMagic) return Status::Corrupted("bloom bad magic");
  const size_t nbytes = (bits + 7) / 8;
  if (in.size() < nbytes + 4) return Status::Corrupted("bloom truncated");
  out->num_bits_ = bits;
  out->num_hashes_ = static_cast<int>(hashes);
  out->bits_.assign(reinterpret_cast<const uint8_t*>(in.data()),
                    reinterpret_cast<const uint8_t*>(in.data()) + nbytes);
  return Status::OK();
}

}  // namespace papyrus::store
