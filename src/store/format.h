// On-disk formats and naming for the LSM structures.
//
// Per the paper (§2.4): an SSTable consists of three files — SSData (the
// sorted key-value records), SSIndex (offsets and lengths of the keys in
// SSData), and a bloom filter.  Each SSTable carries a per-database,
// per-rank, unique increasing integer SSID starting at one.
//
// SSData record layout (little-endian):
//   [u32 crc][u32 keylen][u32 vallen][u8 flags][key bytes][value bytes]
// crc = CRC-32C over (keylen..value) — i.e. everything after the crc field.
// flags bit 0 = tombstone (paper §2.5: a delete is a put of a zero-length
// value with the tombstone bit set).
//
// SSIndex layout:
//   [u32 magic][u32 reserved][u64 count]
//   count × [u64 data_offset][u32 keylen][u32 vallen][u8 flags]
//   [u32 crc of all of the above]
// The index is small (17 B/record) and loaded fully into memory on open
// (paper §2.6: "PapyrusKV loads the SSIndex in memory and searches SSData").
//
// Bloom filter file layout: see bloom.h.
#pragma once

#include <cstdint>
#include <string>

namespace papyrus::store {

inline constexpr uint32_t kSsIndexMagic = 0x50504b49;  // "PPKI"
inline constexpr uint32_t kBloomMagic = 0x50504b42;    // "PPKB"
inline constexpr uint8_t kFlagTombstone = 0x1;

// Fixed header bytes preceding key/value in an SSData record.
inline constexpr size_t kRecordHeaderSize = 4 + 4 + 4 + 1;
// Bytes per SSIndex entry.
inline constexpr size_t kIndexEntrySize = 8 + 4 + 4 + 1;

struct IndexEntry {
  uint64_t data_offset = 0;  // record start within SSData
  uint32_t keylen = 0;
  uint32_t vallen = 0;
  uint8_t flags = 0;

  bool tombstone() const { return (flags & kFlagTombstone) != 0; }
  // Offset of the key bytes (they follow the record header).
  uint64_t key_offset() const { return data_offset + kRecordHeaderSize; }
  uint64_t value_offset() const { return key_offset() + keylen; }
};

// File names within a rank's database directory.
inline std::string SsDataName(uint64_t ssid) {
  return "sst_" + std::to_string(ssid) + ".data";
}
inline std::string SsIndexName(uint64_t ssid) {
  return "sst_" + std::to_string(ssid) + ".index";
}
inline std::string BloomName(uint64_t ssid) {
  return "sst_" + std::to_string(ssid) + ".bloom";
}

}  // namespace papyrus::store
