#include "store/sstable.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"
#include "common/crc32.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace papyrus::store {

SSTableBuilder::SSTableBuilder(std::string dir, uint64_t ssid,
                               size_t expected_keys, int bloom_bits_per_key)
    : dir_(std::move(dir)),
      ssid_(ssid),
      bloom_(expected_keys, bloom_bits_per_key) {
  open_status_ =
      sim::Storage::NewWritableFile(dir_ + "/" + SsDataName(ssid_) + ".tmp",
                                    &data_file_);
}

Status SSTableBuilder::Add(const Slice& key, const Slice& value,
                           uint8_t flags) {
  if (!open_status_.ok()) return open_status_;
  assert(!finished_);
  if (!last_key_.empty() || !index_.empty()) {
    if (Slice(last_key_).compare(key) >= 0) {
      return Status::InvalidArg("SSTable keys must be strictly ascending");
    }
  }
  last_key_ = key.ToString();

  // Record: [crc][keylen][vallen][flags][key][value]
  std::string rec;
  rec.reserve(kRecordHeaderSize + key.size() + value.size());
  PutFixed32(&rec, 0);  // crc placeholder
  PutFixed32(&rec, static_cast<uint32_t>(key.size()));
  PutFixed32(&rec, static_cast<uint32_t>(value.size()));
  rec.push_back(static_cast<char>(flags));
  rec.append(key.data(), key.size());
  rec.append(value.data(), value.size());
  EncodeFixed32(rec.data(),
                MaskCrc(Crc32c(rec.data() + 4, rec.size() - 4)));

  IndexEntry e;
  e.data_offset = data_offset_;
  e.keylen = static_cast<uint32_t>(key.size());
  e.vallen = static_cast<uint32_t>(value.size());
  e.flags = flags;
  index_.push_back(e);
  bloom_.Add(key);

  Status s = data_file_->Append(rec);
  if (!s.ok()) return s;
  data_offset_ += rec.size();
  return Status::OK();
}

Status SSTableBuilder::Finish() {
  if (!open_status_.ok()) return open_status_;
  assert(!finished_);
  finished_ = true;

  Status s = data_file_->Sync();
  if (!s.ok()) return s;
  s = data_file_->Close();
  if (!s.ok()) return s;

  // SSIndex.
  std::string idx;
  idx.reserve(16 + index_.size() * kIndexEntrySize + 4);
  PutFixed32(&idx, kSsIndexMagic);
  PutFixed32(&idx, 0);
  PutFixed64(&idx, index_.size());
  for (const IndexEntry& e : index_) {
    PutFixed64(&idx, e.data_offset);
    PutFixed32(&idx, e.keylen);
    PutFixed32(&idx, e.vallen);
    idx.push_back(static_cast<char>(e.flags));
  }
  PutFixed32(&idx, MaskCrc(Crc32c(idx.data(), idx.size())));
  s = sim::Storage::WriteStringToFile(dir_ + "/" + SsIndexName(ssid_) + ".tmp",
                                      idx);
  if (!s.ok()) return s;

  // Bloom.
  s = sim::Storage::WriteStringToFile(dir_ + "/" + BloomName(ssid_) + ".tmp",
                                      bloom_.Serialize());
  if (!s.ok()) return s;

  // Publish atomically: data last, since readers discover tables by the
  // presence of the data file's final name.
  for (const auto& name :
       {SsIndexName(ssid_), BloomName(ssid_), SsDataName(ssid_)}) {
    s = sim::Storage::RenameFile(dir_ + "/" + name + ".tmp",
                                 dir_ + "/" + name);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status FlushMemTable(const std::string& dir, uint64_t ssid,
                     const MemTable& mem, int bloom_bits_per_key) {
  obs::Registry& reg = obs::Current();
  obs::ScopedLatency lat(&reg.GetHistogram("store.flush_us"));
  obs::TraceSpan span("store", "flush");
  reg.GetCounter("store.flush_bytes").Inc(mem.ApproxBytes());
  reg.GetCounter("store.flush_entries").Inc(mem.Count());
  SSTableBuilder builder(dir, ssid, mem.Count(), bloom_bits_per_key);
  Status result = Status::OK();
  mem.ForEachSorted([&](const Slice& key, const MemTable::Entry& e) {
    if (!result.ok()) return;
    result = builder.Add(key, e.value, e.tombstone ? kFlagTombstone : 0);
  });
  if (!result.ok()) return result;
  return builder.Finish();
}

Status SSTableReader::Open(const std::string& dir, uint64_t ssid,
                           std::shared_ptr<SSTableReader>* out) {
  auto reader = std::shared_ptr<SSTableReader>(new SSTableReader(dir, ssid));

  // Paper order: the bloom filter file is opened first, to decide whether
  // the rest of the table can be skipped.
  std::string bloom_bytes;
  Status s = sim::Storage::ReadFileToString(dir + "/" + BloomName(ssid),
                                            &bloom_bytes);
  if (!s.ok()) return s;
  s = BloomFilter::Parse(bloom_bytes, &reader->bloom_);
  if (!s.ok()) return s;

  s = sim::Storage::NewRandomAccessFile(dir + "/" + SsDataName(ssid),
                                        &reader->data_file_);
  if (!s.ok()) return s;

  *out = std::move(reader);
  return Status::OK();
}

size_t SSTableReader::count() {
  if (!EnsureIndexLoaded().ok()) return 0;
  return index_.size();
}

Status SSTableReader::EnsureIndexLoaded() {
  // Fast path: already published (acquire pairs with the release below).
  if (index_ready_.load(std::memory_order_acquire)) return Status::OK();
  MutexLock lock(&index_mu_);
  if (index_ready_.load(std::memory_order_relaxed)) return Status::OK();

  std::string idx;
  Status s = sim::Storage::ReadFileToString(dir_ + "/" + SsIndexName(ssid_),
                                            &idx);
  if (!s.ok()) return s;
  if (idx.size() < 20) return Status::Corrupted("ssindex too small");
  const uint32_t stored =
      UnmaskCrc(DecodeFixed32(idx.data() + idx.size() - 4));
  if (Crc32c(idx.data(), idx.size() - 4) != stored) {
    return Status::Corrupted("ssindex crc mismatch");
  }
  Slice in(idx.data(), idx.size() - 4);
  uint32_t magic = 0, reserved = 0;
  uint64_t count = 0;
  GetFixed32(&in, &magic);
  GetFixed32(&in, &reserved);
  GetFixed64(&in, &count);
  if (magic != kSsIndexMagic) return Status::Corrupted("ssindex bad magic");
  if (in.size() != count * kIndexEntrySize) {
    return Status::Corrupted("ssindex size mismatch");
  }
  std::vector<IndexEntry> parsed(count);
  for (uint64_t i = 0; i < count; ++i) {
    IndexEntry& e = parsed[i];
    GetFixed64(&in, &e.data_offset);
    GetFixed32(&in, &e.keylen);
    GetFixed32(&in, &e.vallen);
    e.flags = static_cast<uint8_t>(in[0]);
    in.remove_prefix(1);
  }
  // analyze:allow-guarded-by: publish-once — index_mu_ serializes only
  // this load; after the release-store below index_ is immutable and read
  // lock-free, so GUARDED_BY(index_mu_) would misdescribe the protocol.
  index_ = std::move(parsed);
  // Publish: readers that acquire-load index_ready_ == true see the fully
  // constructed vector; index_ is never written again.
  index_ready_.store(true, std::memory_order_release);
  return Status::OK();
}

Status SSTableReader::ReadRecordAt(const IndexEntry& e, std::string* key,
                                   std::string* value) {
  const size_t rec_size = kRecordHeaderSize + e.keylen + e.vallen;
  std::string buf(rec_size, '\0');
  Slice got;
  Status s = data_file_->Read(e.data_offset, rec_size, buf.data(), &got);
  if (!s.ok()) return s;
  if (got.size() != rec_size) return Status::Corrupted("record truncated");
  const uint32_t stored = UnmaskCrc(DecodeFixed32(buf.data()));
  if (Crc32c(buf.data() + 4, rec_size - 4) != stored) {
    return Status::Corrupted("record crc mismatch");
  }
  if (key) key->assign(buf.data() + kRecordHeaderSize, e.keylen);
  if (value) value->assign(buf.data() + kRecordHeaderSize + e.keylen,
                           e.vallen);
  return Status::OK();
}

Status SSTableReader::ReadKeyAt(const IndexEntry& e, std::string* key) {
  key->resize(e.keylen);
  Slice got;
  Status s = data_file_->Read(e.key_offset(), e.keylen, key->data(), &got);
  if (!s.ok()) return s;
  if (got.size() != e.keylen) return Status::Corrupted("key truncated");
  return Status::OK();
}

Status SSTableReader::Get(const Slice& key, SearchMode mode,
                          std::string* value, bool* tombstone, bool* found) {
  *found = false;
  Status s = EnsureIndexLoaded();
  if (!s.ok()) return s;

  if (mode == SearchMode::kLinear) {
    // Sequential scan of SSData in file order, stopping as soon as we pass
    // the sorted position of the key.  Cost: O(n) sequential reads — the
    // disk-era strategy the binary search optimization replaces.
    std::string cur_key;
    for (const IndexEntry& e : index_) {
      s = ReadKeyAt(e, &cur_key);
      if (!s.ok()) return s;
      const int cmp = Slice(cur_key).compare(key);
      if (cmp == 0) {
        *found = true;
        if (tombstone) *tombstone = e.tombstone();
        if (value) {
          std::string k;
          return ReadRecordAt(e, &k, value);
        }
        return Status::OK();
      }
      if (cmp > 0) return Status::OK();  // passed it: absent
    }
    return Status::OK();
  }

  // Binary search over the in-memory index; each probe random-reads one
  // key from SSData — fast on NVM (paper §2.6 "Binary search").
  size_t lo = 0, hi = index_.size();
  std::string probe;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    s = ReadKeyAt(index_[mid], &probe);
    if (!s.ok()) return s;
    const int cmp = Slice(probe).compare(key);
    if (cmp == 0) {
      *found = true;
      if (tombstone) *tombstone = index_[mid].tombstone();
      if (value) {
        std::string k;
        return ReadRecordAt(index_[mid], &k, value);
      }
      return Status::OK();
    }
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return Status::OK();
}

Status SSTableReader::ReadEntry(size_t i, std::string* key,
                                std::string* value, uint8_t* flags) {
  Status s = EnsureIndexLoaded();
  if (!s.ok()) return s;
  if (i >= index_.size()) return Status::InvalidArg("entry index out of range");
  if (flags) *flags = index_[i].flags;
  return ReadRecordAt(index_[i], key, value);
}

}  // namespace papyrus::store
