#include "store/cache.h"

namespace papyrus::store {

namespace {
size_t ChargeOf(const Slice& key, const Slice& value) {
  return key.size() + value.size() + 64;  // 64 ≈ bookkeeping overhead
}
}  // namespace

void LruCache::Put(const Slice& key, const Slice& value, bool tombstone) {
  MutexLock lock(&mu_);
  if (!enabled_) return;
  auto it = map_.find(key.ToString());
  if (it != map_.end()) {
    bytes_ -= ChargeOf(it->second->key, it->second->value);
    lru_.erase(it->second);
    map_.erase(it);
  }
  lru_.push_front(Entry{key.ToString(), value.ToString(), tombstone});
  map_[key.ToString()] = lru_.begin();
  bytes_ += ChargeOf(key, value);
  EvictLocked();
}

bool LruCache::Get(const Slice& key, std::string* value, bool* tombstone) {
  MutexLock lock(&mu_);
  if (!enabled_) return false;
  auto it = map_.find(key.ToString());
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (auto* c = c_misses_.load(std::memory_order_relaxed)) c->Inc();
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (auto* c = c_hits_.load(std::memory_order_relaxed)) c->Inc();
  // Promote to MRU.
  lru_.splice(lru_.begin(), lru_, it->second);
  if (value) *value = it->second->value;
  if (tombstone) *tombstone = it->second->tombstone;
  return true;
}

void LruCache::BindCounters(obs::Counter* hits, obs::Counter* misses) {
  c_hits_.store(hits, std::memory_order_relaxed);
  c_misses_.store(misses, std::memory_order_relaxed);
}

void LruCache::Erase(const Slice& key) {
  MutexLock lock(&mu_);
  auto it = map_.find(key.ToString());
  if (it == map_.end()) return;
  bytes_ -= ChargeOf(it->second->key, it->second->value);
  lru_.erase(it->second);
  map_.erase(it);
}

void LruCache::Clear() {
  MutexLock lock(&mu_);
  lru_.clear();
  map_.clear();
  bytes_ = 0;
}

void LruCache::set_enabled(bool on) {
  MutexLock lock(&mu_);
  if (!on) {
    lru_.clear();
    map_.clear();
    bytes_ = 0;
  }
  enabled_ = on;
}

bool LruCache::enabled() const {
  MutexLock lock(&mu_);
  return enabled_;
}

size_t LruCache::bytes() const {
  MutexLock lock(&mu_);
  return bytes_;
}

size_t LruCache::count() const {
  MutexLock lock(&mu_);
  return map_.size();
}

void LruCache::EvictLocked() {
  while (bytes_ > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= ChargeOf(victim.key, victim.value);
    map_.erase(victim.key);
    lru_.pop_back();
  }
}

}  // namespace papyrus::store
