// Bloom filter (paper §2.4): "Bloom filter is a bit vector used to test
// whether an element is a member of a set.  Given an arbitrary key, it
// identifies whether the key may exist or definitely does not exist in the
// SSData."  PapyrusKV consults the filter before opening SSIndex/SSData so
// that most non-matching SSTables cost one small read.
//
// Implementation: standard Bloom filter with Kirsch–Mitzenmacher double
// hashing — k probe positions derived from two 64-bit hashes of the key.
// Default 10 bits/key, 7 probes (~0.8% false-positive rate).
//
// File layout: [u32 magic][u32 num_hashes][u64 num_bits][bit bytes][u32 crc]
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace papyrus::store {

class BloomFilter {
 public:
  // Builds an empty filter sized for expected_keys at bits_per_key.
  BloomFilter(size_t expected_keys, int bits_per_key = 10);
  // Deserializing constructor; use Parse().
  BloomFilter() = default;

  void Add(const Slice& key);
  // False means "definitely not present"; true means "may be present".
  bool MayContain(const Slice& key) const;

  std::string Serialize() const;
  static Status Parse(const Slice& data, BloomFilter* out);

  uint64_t num_bits() const { return num_bits_; }
  int num_hashes() const { return num_hashes_; }

 private:
  uint64_t num_bits_ = 0;
  int num_hashes_ = 0;
  std::vector<uint8_t> bits_;
};

}  // namespace papyrus::store
