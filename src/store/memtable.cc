#include "store/memtable.h"

#include <cassert>

namespace papyrus::store {

bool MemTable::Put(const Slice& key, const Slice& value, bool tombstone,
                   int owner) {
  WriterMutexLock lock(&mu_);
  if (sealed_) return false;
  Entry e;
  e.value = value.ToString();
  e.tombstone = tombstone;
  e.owner = owner;
  const size_t new_charge = key.size() + value.size() + sizeof(Entry);
  std::string k = key.ToString();
  if (Entry* old = tree_.Find(k)) {
    // Replace in place (the paper: the old pair is deleted first).
    bytes_ -= k.size() + old->value.size() + sizeof(Entry);
    *old = std::move(e);
  } else {
    tree_.InsertOrAssign(k, std::move(e));
  }
  bytes_ += new_charge;
  return true;
}

bool MemTable::Get(const Slice& key, std::string* value, bool* tombstone,
                   int* owner) const {
  ReaderMutexLock lock(&mu_);
  const Entry* e = tree_.Find(key.ToString());
  if (!e) return false;
  if (value) *value = e->value;
  if (tombstone) *tombstone = e->tombstone;
  if (owner) *owner = e->owner;
  return true;
}

void MemTable::Seal() {
  WriterMutexLock lock(&mu_);
  sealed_ = true;
}

bool MemTable::sealed() const {
  ReaderMutexLock lock(&mu_);
  return sealed_;
}

size_t MemTable::ApproxBytes() const {
  ReaderMutexLock lock(&mu_);
  return bytes_;
}

size_t MemTable::Count() const {
  ReaderMutexLock lock(&mu_);
  return tree_.size();
}

void MemTable::ForEachSorted(
    const std::function<void(const Slice&, const Entry&)>& fn) const {
  ReaderMutexLock lock(&mu_);
  assert(sealed_ && "sorted iteration requires a sealed MemTable");
  for (auto it = tree_.Begin(); it.Valid(); it.Next()) {
    fn(Slice(it.key()), it.value());
  }
}

}  // namespace papyrus::store
