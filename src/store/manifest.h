// Manifest: one rank's catalog of live SSTables for one database.
//
// Tracks the set of live SSIDs, allocates the next SSID (per-database,
// per-rank, unique, increasing, starting at one — paper §2.4), and caches
// open SSTableReaders.  On open it recovers state by scanning the rank's
// directory for sst_<ssid>.data files — this is what makes the zero-copy
// workflow (§4.1) work: a new application run re-composes the database
// purely from the SSTables retained on NVM, no data movement.
//
// Thread safety: the get path snapshots the table list (newest first) under
// a shared lock while the compaction thread installs flush results and
// compaction replacements under an exclusive lock.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "store/sstable.h"

namespace papyrus::store {

class Manifest {
 public:
  explicit Manifest(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }

  // Creates the directory if needed and recovers live SSIDs from it.
  Status Open();

  // Allocates the next SSID (monotonic, never reused within a run).
  uint64_t NextSsid();

  // Registers a freshly built SSTable.
  void AddTable(uint64_t ssid);

  // Atomically replaces `removed` with `added` (compaction commit), then
  // deletes the removed tables' files.
  Status ReplaceTables(const std::vector<uint64_t>& removed,
                       const std::vector<uint64_t>& added);

  // Live SSIDs, descending (newest first — the paper's search order).
  std::vector<uint64_t> LiveSsids() const;

  // Highest SSID that has been flushed and registered, 0 if none.  Sent in
  // storage-group get responses (§2.7).
  uint64_t LatestSsid() const;

  size_t TableCount() const;

  // Opens (or returns the cached) reader for ssid.  NOT_FOUND if the table
  // is not live; CORRUPTED if it is quarantined (see below).
  Status GetReader(uint64_t ssid, SSTablePtr* out);

  // ---- Corruption recovery (DESIGN.md §8) ----
  // Remembers the directory holding this rank's latest checkpoint copy of
  // its SSTables.  RepairTable restores corrupt tables from here; set by
  // checkpoint (after the copies land) and restart (the snapshot itself).
  void SetRepairDir(const std::string& dir);
  // Restores sst_<ssid>.* from the repair directory over the live files
  // and drops the cached reader so the next read re-opens the repaired
  // image; also lifts any quarantine.  NOT_FOUND when no repair source
  // covers the table (no checkpoint taken, or table newer than it).
  Status RepairTable(uint64_t ssid);
  // Marks a table unreadable: GetReader fails fast with CORRUPTED until
  // the table is repaired or compacted away, instead of re-parsing corrupt
  // blocks on every probe.
  void Quarantine(uint64_t ssid);
  bool IsQuarantined(uint64_t ssid) const;

  // Opens a reader for a table owned by *another* rank's directory without
  // registering it (storage-group shared reads).  Failures to open a
  // vanished table (compacted away) surface as NOT_FOUND.
  static Status OpenForeign(const std::string& dir, uint64_t ssid,
                            SSTablePtr* out);

  // Lists the SSIDs present in another rank's directory, descending (newest
  // first), without opening or registering anything.  Used by failover
  // promotion to adopt a dead rank's on-NVM image (§2.7 shared storage
  // makes the files directly readable).
  static Status ListSsids(const std::string& dir, std::vector<uint64_t>* out);

 private:
  std::string dir_;
  // Leaf lock: guards the catalog; file deletion in ReplaceTables happens
  // after it is released.
  mutable SharedMutex mu_{"manifest_mu"};
  std::vector<uint64_t> live_ GUARDED_BY(mu_);  // ascending
  std::unordered_map<uint64_t, SSTablePtr> readers_ GUARDED_BY(mu_);
  uint64_t next_ssid_ GUARDED_BY(mu_) = 1;
  // Corruption-recovery state (DESIGN.md §8).
  std::string repair_dir_ GUARDED_BY(mu_);
  std::set<uint64_t> quarantined_ GUARDED_BY(mu_);
};

}  // namespace papyrus::store
