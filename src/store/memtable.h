// MemTable: the in-memory level of the LSM tree.
//
// Paper §2.3–§2.4: a database holds four kinds of MemTables (local,
// immutable local, remote, immutable remote).  A MemTable is a red-black
// tree indexed by key; each entry carries the value and a tombstone bit,
// and — in *remote* MemTables only — the owner rank number, so migration
// can sort and batch entries per owner.  When a MemTable reaches its
// capacity limit it is sealed (becomes immutable) and handed to the
// compaction thread (local) or message dispatcher (remote).
//
// This one class covers all four roles: kind() records local/remote;
// Seal() flips it immutable.  Thread safety: a shared_mutex — the owning
// rank writes, while the message handler and remote readers may search
// concurrently (paper's get path probes the mutable table and the queued
// immutable tables).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/rbtree.h"
#include "common/slice.h"

namespace papyrus::store {

class MemTable {
 public:
  enum class Kind { kLocal, kRemote };

  struct Entry {
    std::string value;
    bool tombstone = false;
    int owner = -1;  // meaningful only in remote MemTables
  };

  // capacity_bytes is the paper's "MemTable threshold": once the charged
  // byte size passes it, Full() turns true and the owner seals the table.
  MemTable(Kind kind, size_t capacity_bytes)
      : kind_(kind), capacity_bytes_(capacity_bytes) {}

  Kind kind() const { return kind_; }

  // Inserts or replaces key → (value, tombstone).  owner is stored for
  // remote tables.  Returns false if the table is sealed (caller must
  // retry on the new mutable table).
  bool Put(const Slice& key, const Slice& value, bool tombstone, int owner);

  // Looks up key.  Returns true if present (tombstones count as present:
  // the caller must check *tombstone — finding a tombstone ends the search
  // with NOT_FOUND, it must not fall through to older levels).
  bool Get(const Slice& key, std::string* value, bool* tombstone,
           int* owner = nullptr) const;

  // Marks the table immutable; subsequent Put() calls fail.
  void Seal();
  bool sealed() const;

  size_t ApproxBytes() const;
  size_t Count() const;
  bool Full() const { return ApproxBytes() >= capacity_bytes_; }

  // Visits entries in sorted key order (flush path requires sorted output).
  // The table must be sealed — sorted iteration of a live table would race.
  void ForEachSorted(
      const std::function<void(const Slice& key, const Entry&)>& fn) const;

 private:
  Kind kind_;
  size_t capacity_bytes_;
  // Leaf lock: the owning rank writes, handler/remote readers share-lock.
  mutable SharedMutex mu_{"memtable_mu"};
  bool sealed_ GUARDED_BY(mu_) = false;
  size_t bytes_ GUARDED_BY(mu_) = 0;
  RbTree<std::string, Entry> tree_ GUARDED_BY(mu_);
};

using MemTablePtr = std::shared_ptr<MemTable>;

}  // namespace papyrus::store
