// SSTable: the immutable on-NVM level of the LSM tree.
//
// Paper §2.4: "An SSTable consists of three files, SSData, SSIndex, and
// bloom filter.  SSData contains the actual key-value pair data ... sorted
// by key.  SSIndex stores the offsets and lengths of keys ... Bloom filter
// is a bit vector ..."  SSTables are written once by the compaction thread
// and never modified; updates and deletes land in newer SSTables (higher
// SSIDs) and win by recency.
//
// §2.6 defines the two search strategies this reader implements:
//   * kLinear — sequential scan of SSData (what a disk-era store would do);
//   * kBinary — binary search over the in-memory SSIndex with random reads
//     of key bytes from SSData, exploiting NVM's fast random access.  This
//     is the paper's "SSTable binary search" optimization (Fig. 8 "B").
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/slice.h"
#include "common/status.h"
#include "sim/storage.h"
#include "store/bloom.h"
#include "store/format.h"
#include "store/memtable.h"

namespace papyrus::store {

enum class SearchMode { kLinear, kBinary };

// Streaming builder: feeds records in ascending key order, then Finish()
// atomically materializes the three files.  Used both by MemTable flush and
// by compaction merges.
class SSTableBuilder {
 public:
  // dir: the rank's database directory; ssid: this table's id;
  // expected_keys sizes the bloom filter.
  SSTableBuilder(std::string dir, uint64_t ssid, size_t expected_keys,
                 int bloom_bits_per_key = 10);

  // Keys must be strictly ascending.  flags: kFlagTombstone or 0.
  Status Add(const Slice& key, const Slice& value, uint8_t flags);
  // Writes SSIndex and bloom files, syncs SSData.  After Finish() the
  // SSTable is visible to readers.
  Status Finish();

  size_t num_entries() const { return index_.size(); }
  uint64_t data_bytes() const { return data_offset_; }

 private:
  std::string dir_;
  uint64_t ssid_;
  std::unique_ptr<sim::WritableFile> data_file_;
  Status open_status_;
  std::vector<IndexEntry> index_;
  BloomFilter bloom_;
  uint64_t data_offset_ = 0;
  std::string last_key_;
  bool finished_ = false;
};

// Convenience: flush a sealed MemTable to SSTable `ssid` in `dir`.
Status FlushMemTable(const std::string& dir, uint64_t ssid,
                     const MemTable& mem, int bloom_bits_per_key = 10);

// Reader.  Open() loads the bloom filter eagerly (the cheap "can we skip
// this table?" probe the paper describes); SSIndex is loaded lazily on the
// first real lookup.  Thread-safe for concurrent Gets.
class SSTableReader {
 public:
  static Status Open(const std::string& dir, uint64_t ssid,
                     std::shared_ptr<SSTableReader>* out);

  uint64_t ssid() const { return ssid_; }
  // Number of records.  Loads the SSIndex on first use (it is lazy so the
  // bloom-only skip path never touches it); returns 0 if the index cannot
  // be read.
  size_t count();

  // Bloom-filter pre-check: false means the key definitely is not here.
  bool MayContain(const Slice& key) const { return bloom_.MayContain(key); }

  // Searches for key.  On hit: *found=true and value/tombstone filled.
  // On miss: *found=false, status OK.
  Status Get(const Slice& key, SearchMode mode, std::string* value,
             bool* tombstone, bool* found);

  // Random access to entry i (compaction / redistribution / checkpoint
  // verification).  Entries are in ascending key order.
  Status ReadEntry(size_t i, std::string* key, std::string* value,
                   uint8_t* flags);

 private:
  SSTableReader(std::string dir, uint64_t ssid)
      : dir_(std::move(dir)), ssid_(ssid) {}

  Status EnsureIndexLoaded();
  // Reads and CRC-verifies the record at index entry i.
  Status ReadRecordAt(const IndexEntry& e, std::string* key,
                      std::string* value);
  // Reads only the key bytes of entry i (a binary-search probe).
  Status ReadKeyAt(const IndexEntry& e, std::string* key);

  std::string dir_;
  uint64_t ssid_;
  BloomFilter bloom_;
  std::unique_ptr<sim::RandomAccessFile> data_file_;

  // Publish-once lazy index.  The hot path (Get/ReadEntry) must not
  // serialize on a lock — simulated NVM reads sleep, so concurrent binary
  // searches have to proceed in parallel.  index_mu_ serializes only the
  // one-time load; on success index_ is populated and index_ready_ is
  // store-released, after which readers acquire-load the flag and read the
  // now-immutable vector with no lock.  A failed load leaves index_ready_
  // false so a later call retries.
  // lint:unguarded-ok — serializes the load only; nothing is
  // guarded by it after index_ready_ is published.
  Mutex index_mu_{"sstable_index_mu"};  // lint:unguarded-ok
  std::atomic<bool> index_ready_{false};
  std::vector<IndexEntry> index_;  // lint:unguarded-ok (immutable once published)
};

using SSTablePtr = std::shared_ptr<SSTableReader>;

}  // namespace papyrus::store
