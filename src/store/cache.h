// LRU key-value cache.
//
// Paper §2.3: "The cache is a kind of MemTable, and it is managed in a LRU
// fashion.  The local and remote caches store key-value pairs fetched from
// SSTables and other remote MPI ranks, respectively."
//
// Semantics used by the DB:
//   * local cache — filled on SSTable hits; an entry is invalidated when a
//     newer pair with the same key enters the local MemTable (§2.4);
//     disabled entirely under PAPYRUSKV_WRONLY protection (§3.2).
//   * remote cache — enabled only while the DB is PAPYRUSKV_RDONLY (§3.2),
//     filled from remote get responses, flushed when the DB becomes
//     writable again.
//
// Entries may be negative (tombstone=true): caching a known-deleted key
// avoids repeating a miss that walked every SSTable.  Thread-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/slice.h"
#include "obs/metrics.h"

namespace papyrus::store {

class LruCache {
 public:
  explicit LruCache(size_t capacity_bytes, bool enabled = true)
      : capacity_(capacity_bytes), enabled_(enabled) {}

  // Inserts/refreshes key → (value, tombstone); evicts LRU entries over
  // capacity.  No-op while disabled.
  void Put(const Slice& key, const Slice& value, bool tombstone);

  // On hit, promotes the entry and fills outputs.
  bool Get(const Slice& key, std::string* value, bool* tombstone);

  // Drops one key (the §2.4 stale-entry invalidation on local puts).
  void Erase(const Slice& key);

  // Drops everything (protection-mode transitions).
  void Clear();

  void set_enabled(bool on);
  bool enabled() const;

  size_t bytes() const;
  size_t count() const;
  // hits_/misses_ are atomics: Get() mutates them under mu_ while these
  // accessors read without it (they used to be plain fields — a data race).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  // Mirrors every hit/miss into registry counters (may be null to unbind).
  // The owner resolves the counters once and binds at construction time.
  void BindCounters(obs::Counter* hits, obs::Counter* misses);

 private:
  struct Entry {
    std::string key;
    std::string value;
    bool tombstone;
  };
  using List = std::list<Entry>;

  void EvictLocked() REQUIRES(mu_);

  // Leaf lock: guards the LRU structures; never held while calling out
  // (counter mirrors are lock-free atomics).
  mutable Mutex mu_{"lru_cache_mu"};
  size_t capacity_;
  bool enabled_ GUARDED_BY(mu_);
  size_t bytes_ GUARDED_BY(mu_) = 0;
  List lru_ GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<std::string, List::iterator> map_ GUARDED_BY(mu_);
  std::atomic<uint64_t> hits_{0}, misses_{0};
  std::atomic<obs::Counter*> c_hits_{nullptr};
  std::atomic<obs::Counter*> c_misses_{nullptr};
};

}  // namespace papyrus::store
