// SSTable merge compaction (paper §2.5).
//
// "PapyrusKV merges the data in a set of SSTables by the compaction thread
// whenever the SSID of a new SSTable is multiples of the predefined number.
// ... if there are multiple key-value pairs with the same key, the key-value
// pair in the newest SSTable that has the highest SSID is inserted in the
// new merged SSTable.  When the compaction is finished, the old SSTables
// are deleted."
//
// MergeTables performs the k-way merge: inputs are read sequentially (the
// paper: "compaction needs sequential file read because the key-value pairs
// in each SSTable are sorted"), duplicate keys resolve newest-wins, and —
// when the merge covers the complete live set — tombstones are purged, since
// no older table can resurrect the key.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/manifest.h"

namespace papyrus::store {

struct CompactionStats {
  uint64_t input_tables = 0;
  uint64_t input_entries = 0;
  uint64_t output_entries = 0;
  uint64_t dropped_stale = 0;      // older duplicates
  uint64_t dropped_tombstones = 0; // purged deletions
};

// Merges the given live tables of `manifest` into one new table with a
// fresh SSID, commits the replacement, and deletes the inputs.
// `input_ssids` must all be live; `drop_tombstones` is safe only when the
// inputs are the complete live set.
Status MergeTables(Manifest& manifest, const std::vector<uint64_t>& input_ssids,
                   bool drop_tombstones, int bloom_bits_per_key,
                   CompactionStats* stats = nullptr);

// The paper's trigger: run a full-set merge when `new_ssid` is a multiple
// of `trigger` (trigger <= 1 disables compaction; fewer than 2 live tables
// is a no-op).
Status MaybeCompact(Manifest& manifest, uint64_t new_ssid, uint64_t trigger,
                    int bloom_bits_per_key, CompactionStats* stats = nullptr);

}  // namespace papyrus::store
