#include "store/manifest.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "sim/storage.h"
#include "store/format.h"

namespace papyrus::store {

Status Manifest::Open() {
  Status s = sim::Storage::CreateDirs(dir_);
  if (!s.ok()) return s;
  std::vector<std::string> entries;
  s = sim::Storage::ListDir(dir_, &entries);
  if (!s.ok()) return s;

  WriterMutexLock lock(&mu_);
  live_.clear();
  for (const auto& name : entries) {
    // Recover from sst_<ssid>.data (the file published last by the
    // builder, so its presence implies a complete table).
    if (name.rfind("sst_", 0) == 0 && name.size() > 9 &&
        name.compare(name.size() - 5, 5, ".data") == 0) {
      const std::string num = name.substr(4, name.size() - 9);
      char* end = nullptr;
      const uint64_t ssid = strtoull(num.c_str(), &end, 10);
      if (end && *end == '\0' && ssid > 0) live_.push_back(ssid);
    }
  }
  std::sort(live_.begin(), live_.end());
  next_ssid_ = live_.empty() ? 1 : live_.back() + 1;
  return Status::OK();
}

Status Manifest::ListSsids(const std::string& dir,
                           std::vector<uint64_t>* out) {
  out->clear();
  std::vector<std::string> entries;
  Status s = sim::Storage::ListDir(dir, &entries);
  if (!s.ok()) return s;
  for (const auto& name : entries) {
    if (name.rfind("sst_", 0) == 0 && name.size() > 9 &&
        name.compare(name.size() - 5, 5, ".data") == 0) {
      const std::string num = name.substr(4, name.size() - 9);
      char* end = nullptr;
      const uint64_t ssid = strtoull(num.c_str(), &end, 10);
      if (end && *end == '\0' && ssid > 0) out->push_back(ssid);
    }
  }
  std::sort(out->rbegin(), out->rend());
  return Status::OK();
}

uint64_t Manifest::NextSsid() {
  WriterMutexLock lock(&mu_);
  return next_ssid_++;
}

void Manifest::AddTable(uint64_t ssid) {
  WriterMutexLock lock(&mu_);
  live_.push_back(ssid);
  std::sort(live_.begin(), live_.end());
}

Status Manifest::ReplaceTables(const std::vector<uint64_t>& removed,
                               const std::vector<uint64_t>& added) {
  {
    WriterMutexLock lock(&mu_);
    for (uint64_t ssid : removed) {
      live_.erase(std::remove(live_.begin(), live_.end(), ssid), live_.end());
      readers_.erase(ssid);
    }
    for (uint64_t ssid : added) live_.push_back(ssid);
    std::sort(live_.begin(), live_.end());
  }
  // Delete old files outside the lock; open readers keep their fds valid.
  Status first_err = Status::OK();
  for (uint64_t ssid : removed) {
    for (const auto& name :
         {SsDataName(ssid), SsIndexName(ssid), BloomName(ssid)}) {
      Status s = sim::Storage::RemoveFile(dir_ + "/" + name);
      if (!s.ok() && first_err.ok()) first_err = s;
    }
  }
  return first_err;
}

std::vector<uint64_t> Manifest::LiveSsids() const {
  ReaderMutexLock lock(&mu_);
  std::vector<uint64_t> out(live_.rbegin(), live_.rend());
  return out;
}

uint64_t Manifest::LatestSsid() const {
  ReaderMutexLock lock(&mu_);
  return live_.empty() ? 0 : live_.back();
}

size_t Manifest::TableCount() const {
  ReaderMutexLock lock(&mu_);
  return live_.size();
}

void Manifest::SetRepairDir(const std::string& dir) {
  WriterMutexLock lock(&mu_);
  repair_dir_ = dir;
}

Status Manifest::RepairTable(uint64_t ssid) {
  obs::Current().GetCounter("store.repair.attempts").Inc();
  std::string src;
  {
    ReaderMutexLock lock(&mu_);
    src = repair_dir_;
  }
  if (src.empty() || !sim::Storage::FileExists(src + "/" + SsDataName(ssid))) {
    return Status::NotFound("no checkpoint copy to repair from");
  }
  for (const auto& name :
       {SsDataName(ssid), SsIndexName(ssid), BloomName(ssid)}) {
    Status s = sim::Storage::CopyFile(src + "/" + name, dir_ + "/" + name);
    if (!s.ok()) return s;
  }
  {
    WriterMutexLock lock(&mu_);
    readers_.erase(ssid);  // force a re-open of the repaired image
    quarantined_.erase(ssid);
  }
  obs::Current().GetCounter("store.repair.success").Inc();
  return Status::OK();
}

void Manifest::Quarantine(uint64_t ssid) {
  {
    WriterMutexLock lock(&mu_);
    if (!quarantined_.insert(ssid).second) return;  // already quarantined
  }
  // A quarantined table means unrepairable corruption: leave a post-mortem
  // window naming the table alongside the reads that hit it.
  if (auto* flight = obs::CurrentFlight()) {
    flight->Record(obs::FlightKind::kQuarantine, "sstable",
                   static_cast<int64_t>(ssid));
    Status s = flight->TriggerDump("sstable quarantined");
    if (!s.ok()) {
      PLOG_WARN << "flight dump (quarantine) failed: " << s.ToString();
    }
  }
}

bool Manifest::IsQuarantined(uint64_t ssid) const {
  ReaderMutexLock lock(&mu_);
  return quarantined_.count(ssid) != 0;
}

Status Manifest::GetReader(uint64_t ssid, SSTablePtr* out) {
  {
    ReaderMutexLock lock(&mu_);
    if (quarantined_.count(ssid) != 0) {
      return Status::Corrupted("sstable quarantined");
    }
    auto it = readers_.find(ssid);
    if (it != readers_.end()) {
      *out = it->second;
      return Status::OK();
    }
    if (std::find(live_.begin(), live_.end(), ssid) == live_.end()) {
      return Status::NotFound("ssid not live");
    }
  }
  SSTablePtr reader;
  Status s = SSTableReader::Open(dir_, ssid, &reader);
  if (!s.ok()) return s;
  WriterMutexLock lock(&mu_);
  auto [it, inserted] = readers_.emplace(ssid, reader);
  *out = it->second;
  return Status::OK();
}

Status Manifest::OpenForeign(const std::string& dir, uint64_t ssid,
                             SSTablePtr* out) {
  if (!sim::Storage::FileExists(dir + "/" + SsDataName(ssid))) {
    return Status::NotFound("foreign sstable absent");
  }
  Status s = SSTableReader::Open(dir, ssid, out);
  if (!s.ok() && !sim::Storage::FileExists(dir + "/" + SsDataName(ssid))) {
    // The owner compacted the table away between our existence check and
    // the open — a benign race; callers fall back to asking the owner.
    return Status::NotFound("foreign sstable deleted concurrently");
  }
  return s;
}

}  // namespace papyrus::store
