// micro_kv — put/get hot-path microbenchmark through the full C API.
//
// Unlike the figure benches this runs with the device/interconnect time
// scale at 0 and a MemTable large enough to avoid flushes, so the numbers
// isolate the *software* cost of one put / one get on the local path —
// the instrumentation hot path.  Used to bound observability overhead
// (EXPERIMENTS.md): run before and after a change that touches the per-op
// bookkeeping and compare KRPS.
//
//   micro_kv [--ranks=N] [--iters=N] [--vallen=N] [--repo=PATH]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "benchlib/flags.h"
#include "benchlib/report.h"
#include "common/timer.h"
#include "core/papyruskv.h"
#include "net/runtime.h"
#include "sim/device_model.h"
#include "sim/storage.h"

using namespace papyrus;
using namespace papyrus::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const int ranks = flags.ranks > 0 ? flags.ranks : 1;
  const int iters = flags.iters > 0 ? flags.iters : 200000;
  const size_t vallen = flags.vallen > 0 ? flags.vallen : 100;
  const std::string repo = flags.repo + "/micro_kv";

  sim::Storage::RemoveDirRecursive(repo).IgnoreError();
  sim::SetTimeScale(0);

  printf("micro_kv: %d rank(s), %d ops/rank, %zuB values (hot path, no "
         "simulated delays)\n", ranks, iters, vallen);

  net::RunRanks(ranks, [&](net::RankContext& ctx) {
    BenchCheck(papyruskv_init(nullptr, nullptr, repo.c_str()), "papyruskv_init");

    papyruskv_option_t opt;
    BenchCheck(papyruskv_option_init(&opt), "papyruskv_option_init");
    // Big enough that the workload never rotates a MemTable: we are
    // measuring the per-op software path, not flush I/O.
    opt.memtable_size = static_cast<size_t>(iters + 1024) * (vallen + 64);
    papyruskv_db_t db;
    BenchCheck(papyruskv_open("micro", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR, &opt, &db), "papyruskv_open");

    // Rank-local keys only: the put/get fast path with no network hop.
    std::vector<std::string> keys;
    keys.reserve(iters);
    for (int i = 0; i < iters; ++i) {
      keys.push_back("r" + std::to_string(ctx.rank) + "/k" +
                     std::to_string(i));
    }
    const std::string value(vallen, 'v');

    BenchCheck(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), "papyruskv_barrier");
    Stopwatch put_sw;
    for (const auto& k : keys) {
      BenchCheck(papyruskv_put(db, k.data(), k.size(), value.data(), value.size()), "papyruskv_put");
    }
    const double put_s = put_sw.ElapsedSeconds();

    BenchCheck(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), "papyruskv_barrier");
    std::string out(vallen, 0);
    Stopwatch get_sw;
    for (const auto& k : keys) {
      char* buf = out.data();
      size_t len = out.size();
      BenchCheck(papyruskv_get(db, k.data(), k.size(), &buf, &len), "papyruskv_get");
    }
    const double get_s = get_sw.ElapsedSeconds();

    RankStats put_stats = GatherStats(ctx.comm, put_s);
    RankStats get_stats = GatherStats(ctx.comm, get_s);
    if (ctx.rank == 0) {
      const uint64_t total = static_cast<uint64_t>(iters) * ranks;
      Table t("micro_kv hot path", {"op", "KRPS", "us/op (max rank)"});
      t.AddRow({"put", Table::Num(Krps(total, put_stats.max), 1),
                Table::Num(put_stats.max / iters * 1e6, 3)});
      t.AddRow({"get", Table::Num(Krps(total, get_stats.max), 1),
                Table::Num(get_stats.max / iters * 1e6, 3)});
      t.Print();
    }

    WriteBenchMetrics(ctx.comm, "micro_kv");

    BenchCheck(papyruskv_close(db), "papyruskv_close");
    BenchCheck(papyruskv_finalize(), "papyruskv_finalize");
  });
  return 0;
}
