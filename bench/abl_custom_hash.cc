// Ablation E10 — application-customized hashing (paper §2.4 "Load
// balancing" and the Meraculous port of Figure 12).
//
// PapyrusKV places a pair on hash(key) % nranks.  The built-in hash
// scatters keys uniformly — good for balance, oblivious to application
// locality.  When the application *knows* its access affinity (Meraculous:
// "the same hash function for load balancing in the UPC application is
// used in PapyrusKV"), installing that function turns most remote
// operations into local ones.
//
// Workload: each rank owns a "block" of keys (block<i>/item<j>) and
// repeatedly reads its own block — the paper's thread-data-affinity
// pattern.  Series:
//   * built-in hash — keys scatter, ~(N-1)/N of reads are remote;
//   * custom hash extracting the block id — every read is local.
// Reported: read KRPS plus the measured local/remote split.
#include <cstdio>

#include "bench_util.h"
#include "core/db_shard.h"

using namespace papyrus;
using namespace papyrus::bench;

namespace {

uint64_t BlockAffinityHash(const char* key, size_t keylen) {
  // Keys look like "block<i>/item<j>": the block id defines affinity.
  uint64_t block = 0;
  for (size_t i = 5; i < keylen && key[i] != '/'; ++i) {
    block = block * 10 + static_cast<uint64_t>(key[i] - '0');
  }
  return block;
}

struct HashResult {
  double read_krps = 0;
  uint64_t gets_local = 0;
  uint64_t gets_remote = 0;
};

HashResult RunHash(const Flags& flags, bool custom, int iters) {
  const std::string repo = "nvme:" + flags.repo + "/abl_hash";
  HashResult out;
  RankStats get_t;
  RunKvJob(flags.ranks, /*ranks_per_node=*/2, repo,
           [&](net::RankContext& ctx) {
             papyruskv_option_t opt;
             BenchCheck(papyruskv_option_init(&opt), "papyruskv_option_init");
             if (custom) opt.hash = BlockAffinityHash;
             papyruskv_db_t db;
             if (papyruskv_open("hash", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR,
                                &opt, &db) != PAPYRUSKV_SUCCESS) {
               throw std::runtime_error("open failed");
             }
             // Populate my block.
             const std::string& value = ValueBlob(4096);
             for (int j = 0; j < iters; ++j) {
               const std::string k = "block" + std::to_string(ctx.rank) +
                                     "/item" + std::to_string(j);
               BenchCheck(papyruskv_put(db, k.data(), k.size(), value.data(),
                             value.size()), "papyruskv_put");
             }
             BenchCheck(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), "papyruskv_barrier");

             // Affinity reads: each rank re-reads its own block.
             Stopwatch sw;
             for (int j = 0; j < iters; ++j) {
               const std::string k = "block" + std::to_string(ctx.rank) +
                                     "/item" + std::to_string(j);
               char* v = nullptr;
               size_t n = 0;
               if (papyruskv_get(db, k.data(), k.size(), &v, &n) ==
                   PAPYRUSKV_SUCCESS) {
                 BenchCheck(papyruskv_free(db, v), "papyruskv_free");
               }
             }
             get_t = GatherStats(ctx.comm, sw.ElapsedSeconds());
             if (ctx.rank == 0) {
               const auto stats =
                   papyrus::core::DbHandle(db)->StatsSnapshot();
               out.gets_local = stats.gets_local;
               out.gets_remote = stats.gets_remote;
             }
             BenchCheck(papyruskv_close(db), "papyruskv_close");
           });
  CleanupRepo(repo);
  const uint64_t total_ops =
      static_cast<uint64_t>(iters) * static_cast<uint64_t>(flags.ranks);
  out.read_krps = Krps(total_ops, get_t.max);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  ApplyScale(flags, 10.0);
  const int iters = flags.iters > 0 ? flags.iters : 96;

  printf("Ablation: custom hash vs built-in, %d ranks, %d keys/rank\n",
         flags.ranks, iters);

  Table table("Ablation E10 — application affinity hash (rank-0 counters)",
              {"hash", "read KRPS", "local gets", "remote gets"});
  const HashResult builtin = RunHash(flags, false, iters);
  const HashResult custom = RunHash(flags, true, iters);
  table.AddRow({"built-in FNV-1a", Table::Num(builtin.read_krps, 2),
                std::to_string(builtin.gets_local),
                std::to_string(builtin.gets_remote)});
  table.AddRow({"custom (block affinity)", Table::Num(custom.read_krps, 2),
                std::to_string(custom.gets_local),
                std::to_string(custom.gets_remote)});
  table.Print();
  return 0;
}
