// Figure 11 — PapyrusKV vs MDHIM on NVMe and Lustre.
//
// Paper setup: the Fig. 9 workload at a 50/50 update/read ratio, 16 B keys,
// 8 B and 128 KB values, rank sweep; MDHIM runs with LevelDB as its local
// store, on the same storage targets.
//
// Expected shape (§5.2):
//   * 8 B values: everything stays in DRAM, so storage choice is
//     irrelevant; PapyrusKV beats MDHIM because MDHIM pays its two-layer
//     marshaling and a synchronous round trip per op;
//   * 128 KB values: SSTables are involved; NVMe beats Lustre for both
//     systems; PapyrusKV additionally shares SSTables within the storage
//     group, widening the gap.
#include <cstdio>

#include "baseline/mdhim.h"
#include "bench_util.h"

using namespace papyrus;
using namespace papyrus::bench;

namespace {

double RunPkv(const Flags& flags, int nranks, const char* storage,
              size_t vallen, int iters) {
  const std::string repo =
      std::string(storage) + ":" + flags.repo + "/fig11_pkv";
  RankStats phase_t;
  RunKvJob(nranks, /*ranks_per_node=*/4, repo, [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    BenchCheck(papyruskv_option_init(&opt), "papyruskv_option_init");
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    papyruskv_db_t db;
    if (papyruskv_open("fig11", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR, &opt,
                       &db) != PAPYRUSKV_SUCCESS) {
      throw std::runtime_error("open failed");
    }
    const WorkloadResult r =
        RunWorkload(db, ctx.rank, flags.keylen, vallen, iters, 50);
    phase_t = GatherStats(ctx.comm, r.phase_seconds);
    BenchCheck(papyruskv_close(db), "papyruskv_close");
  });
  CleanupRepo(repo);
  const uint64_t total_ops =
      static_cast<uint64_t>(iters) * static_cast<uint64_t>(nranks);
  return Krps(total_ops, phase_t.max);
}

double RunMdhim(const Flags& flags, int nranks, const char* storage,
                size_t vallen, int iters) {
  const std::string repo =
      std::string(storage) + ":" + flags.repo + "/fig11_mdhim";
  sim::DeviceClass cls;
  std::string root;
  core::ParseRepositorySpec(repo, &cls, &root);
  sim::Storage::RemoveDirRecursive(root).IgnoreError();

  RankStats phase_t;
  sim::Topology topo;
  topo.nranks = nranks;
  topo.ranks_per_node = 4;
  net::RunRanks(topo, [&](net::RankContext& ctx) {
    std::unique_ptr<baseline::Mdhim> db;
    baseline::MdhimOptions mopt;
    if (!baseline::Mdhim::Open(ctx, repo, mopt, &db).ok()) {
      throw std::runtime_error("mdhim open failed");
    }
    const auto keys = MakeKeys(ctx.rank, static_cast<size_t>(iters),
                               flags.keylen);
    const std::string& value = ValueBlob(vallen);
    for (const auto& k : keys) {
      Status ps = db->Put(k, value);
      if (!ps.ok()) throw std::runtime_error("mdhim load: " + ps.ToString());
    }
    ctx.comm.Barrier();

    Rng rng(0xbadc0de + static_cast<uint64_t>(ctx.rank));
    Stopwatch sw;
    for (int i = 0; i < iters; ++i) {
      const std::string& k = keys[rng.Uniform(keys.size())];
      if (rng.Uniform(100) < 50) {
        if (!db->Put(k, value).ok()) {
          throw std::runtime_error("mdhim put failed");
        }
      } else {
        std::string v;
        Status gs = db->Get(k, &v);
        if (!gs.ok() && !gs.IsNotFound()) {
          throw std::runtime_error("mdhim get failed");
        }
      }
    }
    phase_t = GatherStats(ctx.comm, sw.ElapsedSeconds());
    Status cs = db->Close();
    if (!cs.ok()) throw std::runtime_error("mdhim close: " + cs.ToString());
  });
  sim::Storage::RemoveDirRecursive(root).IgnoreError();
  const uint64_t total_ops =
      static_cast<uint64_t>(iters) * static_cast<uint64_t>(nranks);
  return Krps(total_ops, phase_t.max);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  ApplyScale(flags, 10.0);
  const int iters = flags.iters > 0 ? flags.iters : 64;

  printf("Figure 11: PapyrusKV vs MDHIM, 50/50 update/read, %d ops/rank\n",
         iters);

  for (size_t vallen : {size_t{8}, size_t{128 * 1024}}) {
    Table table("Figure 11 — throughput (KRPS), value " + HumanSize(vallen),
                {"ranks", "PKV-N", "PKV-L", "MDHIM-N", "MDHIM-L"});
    for (int nranks = 1; nranks <= flags.ranks; nranks *= 2) {
      table.AddRow(
          {std::to_string(nranks),
           Table::Num(RunPkv(flags, nranks, "nvme", vallen, iters), 2),
           Table::Num(RunPkv(flags, nranks, "lustre", vallen, iters), 2),
           Table::Num(RunMdhim(flags, nranks, "nvme", vallen, iters), 2),
           Table::Num(RunMdhim(flags, nranks, "lustre", vallen, iters), 2)});
    }
    table.Print();
  }
  return 0;
}
