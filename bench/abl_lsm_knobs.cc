// Ablation E8 — LSM design knobs (DESIGN.md §5 items 1 and 3).
//
// Sweeps the design choices the paper motivates but does not isolate:
//   * bloom filter on/off — the "skip the SSTable" pre-check (§2.4);
//   * local cache on/off — the SSTable-hit cache (§2.6);
//   * MemTable threshold — fewer, larger SSTables vs many small ones;
//   * compaction trigger — table count the gets must walk.
//
// Workload: a put phase small-MemTable-flushed into many SSTables, then a
// get-heavy phase (re-reading keys uniformly).  Reported: get KRPS plus
// the mechanism counters (bloom negatives, cache hits, tables).
#include <cstdio>

#include "bench_util.h"
#include "core/db_shard.h"

using namespace papyrus;
using namespace papyrus::bench;

namespace {

struct Config {
  const char* label;
  int bloom_bits;
  int cache_local;
  size_t memtable;
  uint64_t trigger;
};

void RunConfig(const Flags& flags, const Config& cfg, size_t vallen,
               int iters, Table* table) {
  const std::string repo = "nvme:" + flags.repo + "/abl_lsm";
  RankStats get_t;
  core::DbStats stats{};
  size_t tables = 0;
  RunKvJob(flags.ranks, flags.ranks, repo, [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    BenchCheck(papyruskv_option_init(&opt), "papyruskv_option_init");
    opt.bloom_bits_per_key = cfg.bloom_bits;
    opt.cache_local = cfg.cache_local;
    opt.memtable_size = cfg.memtable;
    opt.compaction_trigger = cfg.trigger;
    papyruskv_db_t db;
    if (papyruskv_open("abl", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR, &opt,
                       &db) != PAPYRUSKV_SUCCESS) {
      throw std::runtime_error("open failed");
    }
    const auto keys = MakeKeys(ctx.rank, static_cast<size_t>(iters),
                               flags.keylen);
    const std::string& value = ValueBlob(vallen);
    for (const auto& k : keys) {
      BenchCheck(papyruskv_put(db, k.data(), k.size(), value.data(), value.size()), "papyruskv_put");
    }
    BenchCheck(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), "papyruskv_barrier");

    Rng rng(3 + static_cast<uint64_t>(ctx.rank));
    Stopwatch sw;
    for (int i = 0; i < iters * 2; ++i) {
      const std::string& k = keys[rng.Uniform(keys.size())];
      char* v = nullptr;
      size_t n = 0;
      if (papyruskv_get(db, k.data(), k.size(), &v, &n) ==
          PAPYRUSKV_SUCCESS) {
        BenchCheck(papyruskv_free(db, v), "papyruskv_free");
      }
    }
    get_t = GatherStats(ctx.comm, sw.ElapsedSeconds());
    if (ctx.rank == 0) {
      auto shard = core::DbHandle(db);
      stats = shard->StatsSnapshot();
      tables = shard->manifest().TableCount();
    }
    BenchCheck(papyruskv_close(db), "papyruskv_close");
  });
  CleanupRepo(repo);
  const uint64_t total_ops = static_cast<uint64_t>(iters) * 2 *
                             static_cast<uint64_t>(flags.ranks);
  table->AddRow({cfg.label, Table::Num(Krps(total_ops, get_t.max), 2),
                 std::to_string(tables), std::to_string(stats.bloom_negatives),
                 std::to_string(stats.cache_local_hits),
                 std::to_string(stats.sstable_hits)});
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  ApplyScale(flags, 10.0);
  const int iters = flags.iters > 0 ? flags.iters : 96;
  const size_t vallen = flags.vallen > 0 ? flags.vallen : 4096;

  printf("Ablation: LSM knobs, %d ranks, %d keys/rank, value %s\n",
         flags.ranks, iters, HumanSize(vallen).c_str());

  Table table("Ablation E8 — get path vs LSM design knobs (rank-0 counters)",
              {"config", "get KRPS", "tables", "bloom neg", "cache hits",
               "sstable hits"});
  const Config configs[] = {
      {"baseline (bloom10,cache,mt64K,tr4)", 10, 1, 64 << 10, 4},
      {"no bloom filter", 0, 1, 64 << 10, 4},
      {"no local cache", 10, 0, 64 << 10, 4},
      {"no bloom, no cache", 0, 0, 64 << 10, 4},
      {"memtable 16K (more tables)", 10, 1, 16 << 10, 4},
      {"memtable 1M (few tables)", 10, 1, 1 << 20, 4},
      {"no compaction (trigger 0)", 10, 1, 64 << 10, 0},
      {"aggressive compaction (trigger 2)", 10, 1, 64 << 10, 2},
  };
  for (const Config& cfg : configs) {
    RunConfig(flags, cfg, vallen, iters, &table);
  }
  table.Print();
  return 0;
}
