// micro_kv_async — remote-put throughput: one-round-trip-per-op synchronous
// puts vs the async submission pipeline's same-destination batching
// (DESIGN.md §9).
//
// Every rank streams puts whose keys hash to its neighbour rank, so every
// operation is a remote one.  The synchronous series pays one put_batch
// round trip per op (sequential consistency); the async series submits
// fire-and-forget papyruskv_put_async and seals with papyruskv_fence, so
// consecutive same-destination submissions coalesce into shared frames.
// Series vary the batching knobs (PAPYRUSKV_BATCH_WINDOW_US /
// PAPYRUSKV_BATCH_MAX); each series is its own job because the pipeline
// reads the knobs once at startup.
//
// The headline series (200us window, default max) also snapshots the
// metrics registry to BENCH_micro_kv_async.json with the measured
// throughputs folded in as bench.* gauges, so the sync-vs-async ratio is
// part of the committed results trajectory.
//
//   micro_kv_async [--ranks=N] [--iters=N] [--vallen=N] [--repo=PATH]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "benchlib/flags.h"
#include "benchlib/report.h"
#include "common/timer.h"
#include "core/papyruskv.h"
#include "core/runtime.h"
#include "net/runtime.h"
#include "obs/metrics.h"
#include "sim/device_model.h"
#include "sim/storage.h"

using namespace papyrus;
using namespace papyrus::bench;

namespace {

// Keys look like "d<rank>/...": the destination rank is explicit, so the
// bench controls exactly which ops are remote (paper §2.4 custom hashing).
uint64_t DestRankHash(const char* key, size_t keylen) {
  uint64_t r = 0;
  for (size_t i = 1; i < keylen && key[i] != '/'; ++i) {
    r = r * 10 + static_cast<uint64_t>(key[i] - '0');
  }
  return r;
}

struct Series {
  const char* label;
  bool async_api;
  int window_us;   // PAPYRUSKV_BATCH_WINDOW_US (async series only)
  int batch_max;   // PAPYRUSKV_BATCH_MAX (async series only)
};

struct SeriesResult {
  double seconds = 0;      // slowest rank's put-phase time
  uint64_t frames = 0;     // wire frames sent by rank 0's pipeline
  double ops_per_frame = 0;
};

SeriesResult RunSeries(const Series& s, const Flags& flags, int iters,
                       size_t vallen, const std::string& repo,
                       bool write_metrics, double sync_krps) {
  if (s.async_api) {
    setenv("PAPYRUSKV_BATCH_WINDOW_US", std::to_string(s.window_us).c_str(), 1);
    setenv("PAPYRUSKV_BATCH_MAX", std::to_string(s.batch_max).c_str(), 1);
  } else {
    unsetenv("PAPYRUSKV_BATCH_WINDOW_US");
    unsetenv("PAPYRUSKV_BATCH_MAX");
  }

  SeriesResult out;
  RunKvJob(flags.ranks, /*ranks_per_node=*/flags.ranks, repo,
           [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    BenchCheck(papyruskv_option_init(&opt), "papyruskv_option_init");
    opt.consistency = PAPYRUSKV_SEQUENTIAL;  // sync puts = one RTT each
    opt.hash = DestRankHash;
    // Never rotate a MemTable: the series isolate the wire round trips,
    // not flush I/O.
    opt.memtable_size =
        static_cast<size_t>(iters + 1024) * (vallen + 64) * 2;
    papyruskv_db_t db;
    BenchCheck(papyruskv_open("masync", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR,
                              &opt, &db),
               "papyruskv_open");

    // Every op targets the neighbour rank — all remote.
    const int peer = (ctx.rank + 1) % ctx.size();
    std::vector<std::string> keys;
    keys.reserve(iters);
    for (int i = 0; i < iters; ++i) {
      keys.push_back("d" + std::to_string(peer) + "/k" +
                     std::to_string(ctx.rank) + "." + std::to_string(i));
    }
    const std::string& value = ValueBlob(vallen);

    auto& reg = papyrus::core::KvRuntime::Current()->metrics();
    const uint64_t frames_before = reg.GetCounter("async.frames").Value();

    BenchCheck(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), "papyruskv_barrier");
    Stopwatch sw;
    for (const auto& k : keys) {
      if (s.async_api) {
        BenchCheck(papyruskv_put_async(db, k.data(), k.size(), value.data(),
                                       value.size(), nullptr),
                   "papyruskv_put_async");
      } else {
        BenchCheck(papyruskv_put(db, k.data(), k.size(), value.data(),
                                 value.size()),
                   "papyruskv_put");
      }
    }
    // Both series pay the completion fence, so the async numbers include
    // draining every in-flight batch.
    BenchCheck(papyruskv_fence(db), "papyruskv_fence");
    const RankStats t = GatherStats(ctx.comm, sw.ElapsedSeconds());

    if (ctx.rank == 0) {
      out.seconds = t.max;
      out.frames = reg.GetCounter("async.frames").Value() - frames_before;
      out.ops_per_frame =
          out.frames > 0 ? static_cast<double>(iters) / out.frames : 0;
      if (write_metrics) {
        const uint64_t total = static_cast<uint64_t>(iters) * flags.ranks;
        reg.GetGauge("bench.sync_put_krps")
            .Set(static_cast<int64_t>(sync_krps));
        reg.GetGauge("bench.async_put_krps")
            .Set(static_cast<int64_t>(Krps(total, t.max)));
        reg.GetGauge("bench.async_speedup_x100")
            .Set(static_cast<int64_t>(Krps(total, t.max) / sync_krps * 100));
      }
    }
    if (write_metrics) WriteBenchMetrics(ctx.comm, "micro_kv_async");

    BenchCheck(papyruskv_close(db), "papyruskv_close");
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.ranks <= 0) flags.ranks = 8;
  const int iters = flags.iters > 0 ? flags.iters : 2000;
  const size_t vallen = flags.vallen > 0 ? flags.vallen : 100;
  const std::string repo = "nvme:" + flags.repo + "/micro_kv_async";
  ApplyScale(flags, 0);  // software cost only, like micro_kv

  printf("micro_kv_async: %d ranks, %d remote puts/rank, %zuB values\n",
         flags.ranks, iters, vallen);

  // The headline async series runs last and writes the metrics snapshot.
  const std::vector<Series> series = {
      {"sync put", false, 0, 0},
      {"async w=0", true, 0, 256},
      {"async w=200us max=32", true, 200, 32},
      {"async w=200us", true, 200, 256},
  };

  const uint64_t total = static_cast<uint64_t>(iters) * flags.ranks;
  double sync_krps = 0;
  Table t("micro_kv_async remote puts",
          {"series", "KRPS", "us/op (max rank)", "ops/frame", "speedup"});
  for (size_t i = 0; i < series.size(); ++i) {
    const bool last = i + 1 == series.size();
    const SeriesResult r =
        RunSeries(series[i], flags, iters, vallen, repo, last, sync_krps);
    const double krps = Krps(total, r.seconds);
    if (!series[i].async_api) sync_krps = krps;
    t.AddRow({series[i].label, Table::Num(krps, 1),
              Table::Num(r.seconds / iters * 1e6, 3),
              series[i].async_api ? Table::Num(r.ops_per_frame, 1) : "-",
              series[i].async_api ? Table::Num(krps / sync_krps, 2) + "x"
                                  : "1.00x"});
  }
  t.Print();
  CleanupRepo(repo);
  return 0;
}
