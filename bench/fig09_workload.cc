// Figure 9 — mixed workloads and remote caching under read-only
// protection.
//
// Paper setup: the `workload` app — an init phase of puts, then a
// read/update phase at ratios 50/50, 95/5 and 100/0, in sequential
// consistency mode; plus "100/0+P", where the database is protected
// PAPYRUSKV_RDONLY so the remote cache serves repeated remote gets
// (artifact: PAPYRUSKV_CACHE_REMOTE=1).
//
// Expected shape (§5.2): on a fast-get system throughput rises with read
// ratio; with protection, 100/0+P beats 100/0 because remote values are
// cached after the first fetch.
#include <cstdio>

#include "bench_util.h"

using namespace papyrus;
using namespace papyrus::bench;

namespace {

double RunRatio(const Flags& flags, int nranks, int update_pct, bool protect,
                size_t vallen, int iters) {
  const std::string repo = "nvme:" + flags.repo + "/fig09";
  if (protect) setenv("PAPYRUSKV_CACHE_REMOTE", "1", 1);
  RankStats phase_t;
  RunKvJob(nranks, /*ranks_per_node=*/4, repo, [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    BenchCheck(papyruskv_option_init(&opt), "papyruskv_option_init");
    opt.consistency = PAPYRUSKV_SEQUENTIAL;  // the paper's Fig. 9 mode
    papyruskv_db_t db;
    if (papyruskv_open("fig09", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR, &opt,
                       &db) != PAPYRUSKV_SUCCESS) {
      throw std::runtime_error("open failed");
    }

    const auto keys = MakeKeys(ctx.rank, static_cast<size_t>(iters),
                               flags.keylen);
    const std::string& value = ValueBlob(vallen);
    for (const auto& k : keys) {
      BenchCheck(papyruskv_put(db, k.data(), k.size(), value.data(), value.size()), "papyruskv_put");
    }
    BenchCheck(papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), "papyruskv_barrier");
    if (protect) BenchCheck(papyruskv_protect(db, PAPYRUSKV_RDONLY), "papyruskv_protect");

    Rng rng(17 + static_cast<uint64_t>(ctx.rank));
    Stopwatch sw;
    for (int i = 0; i < iters; ++i) {
      const std::string& k = keys[rng.Uniform(keys.size())];
      if (static_cast<int>(rng.Uniform(100)) < update_pct) {
        BenchCheck(papyruskv_put(db, k.data(), k.size(), value.data(), value.size()), "papyruskv_put");
      } else {
        char* v = nullptr;
        size_t n = 0;
        if (papyruskv_get(db, k.data(), k.size(), &v, &n) ==
            PAPYRUSKV_SUCCESS) {
          BenchCheck(papyruskv_free(db, v), "papyruskv_free");
        }
      }
    }
    phase_t = GatherStats(ctx.comm, sw.ElapsedSeconds());
    if (protect) BenchCheck(papyruskv_protect(db, PAPYRUSKV_RDWR), "papyruskv_protect");
    BenchCheck(papyruskv_close(db), "papyruskv_close");
  });
  if (protect) unsetenv("PAPYRUSKV_CACHE_REMOTE");
  CleanupRepo(repo);
  const uint64_t total_ops =
      static_cast<uint64_t>(iters) * static_cast<uint64_t>(nranks);
  return Krps(total_ops, phase_t.max);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  ApplyScale(flags, 10.0);
  const int iters = flags.iters > 0 ? flags.iters : 64;
  const size_t vallen = flags.vallen > 0 ? flags.vallen : 128 * 1024;

  printf("Figure 9: read/update workloads, value %s, %d ops/rank, "
         "sequential mode\n",
         HumanSize(vallen).c_str(), iters);

  Table table(
      "Figure 9 — read/update phase throughput (KRPS); P = RDONLY "
      "protection (remote cache)",
      {"ranks", "50/50", "95/5", "100/0", "100/0+P"});
  for (int nranks = 1; nranks <= flags.ranks; nranks *= 2) {
    table.AddRow(
        {std::to_string(nranks),
         Table::Num(RunRatio(flags, nranks, 50, false, vallen, iters), 2),
         Table::Num(RunRatio(flags, nranks, 5, false, vallen, iters), 2),
         Table::Num(RunRatio(flags, nranks, 0, false, vallen, iters), 2),
         Table::Num(RunRatio(flags, nranks, 0, true, vallen, iters), 2)});
  }
  table.Print();
  return 0;
}
