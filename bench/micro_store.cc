// Microbenchmarks of the storage-engine primitives (google-benchmark).
//
// These quantify the data-structure-level choices underneath the figure
// benches: the red-black-tree MemTable index, bloom filter probes, SSTable
// binary vs linear search, the LRU cache, CRC32C, and the lock-free queue.
#include <benchmark/benchmark.h>

#include <map>

#include "../tests/util/temp_dir.h"
#include "common/crc32.h"
#include "common/random.h"
#include "common/rbtree.h"
#include "common/ring_queue.h"
#include "sim/device_model.h"
#include "store/bloom.h"
#include "store/cache.h"
#include "store/memtable.h"
#include "store/sstable.h"

namespace papyrus {
namespace {

void BM_RbTreeInsert(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::string> keys;
  for (int i = 0; i < 4096; ++i) keys.push_back(RandomKey(rng, 16));
  for (auto _ : state) {
    RbTree<std::string, int> tree;
    for (const auto& k : keys) tree.InsertOrAssign(k, 1);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_RbTreeInsert);

void BM_StdMapInsert(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::string> keys;
  for (int i = 0; i < 4096; ++i) keys.push_back(RandomKey(rng, 16));
  for (auto _ : state) {
    std::map<std::string, int> tree;
    for (const auto& k : keys) tree.insert_or_assign(k, 1);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_StdMapInsert);

void BM_RbTreeLookup(benchmark::State& state) {
  Rng rng(2);
  RbTree<std::string, int> tree;
  std::vector<std::string> keys;
  for (int i = 0; i < 4096; ++i) {
    keys.push_back(RandomKey(rng, 16));
    tree.InsertOrAssign(keys.back(), i);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find(keys[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RbTreeLookup);

void BM_MemTablePut(benchmark::State& state) {
  const size_t vallen = static_cast<size_t>(state.range(0));
  Rng rng(3);
  std::vector<std::string> keys;
  for (int i = 0; i < 1024; ++i) keys.push_back(RandomKey(rng, 16));
  const std::string value = PatternValue(9, vallen);
  for (auto _ : state) {
    store::MemTable mem(store::MemTable::Kind::kLocal, ~size_t{0});
    for (const auto& k : keys) mem.Put(k, value, false, 0);
    benchmark::DoNotOptimize(mem.Count());
  }
  state.SetBytesProcessed(state.iterations() * 1024 *
                          static_cast<int64_t>(vallen));
}
BENCHMARK(BM_MemTablePut)->Arg(256)->Arg(4096)->Arg(65536);

void BM_BloomQuery(benchmark::State& state) {
  Rng rng(4);
  store::BloomFilter bloom(100000, 10);
  for (int i = 0; i < 100000; ++i) bloom.Add(RandomKey(rng, 16));
  std::vector<std::string> probes;
  for (int i = 0; i < 1024; ++i) probes.push_back(RandomKey(rng, 16));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bloom.MayContain(probes[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomQuery);

void BM_SSTableSearch(benchmark::State& state) {
  const bool binary = state.range(0) != 0;
  sim::SetTimeScale(0);
  static testutil::TempDir tmp("micro_sst");
  static store::SSTablePtr reader = [] {
    store::SSTableBuilder builder(tmp.path(), 1, 8192);
    for (int i = 0; i < 8192; ++i) {
      char key[32];
      snprintf(key, sizeof(key), "key%08d", i);
      if (!builder.Add(key, PatternValue(i, 128), 0).ok()) std::abort();
    }
    if (!builder.Finish().ok()) std::abort();
    store::SSTablePtr r;
    if (!store::SSTableReader::Open(tmp.path(), 1, &r).ok()) std::abort();
    return r;
  }();
  Rng rng(5);
  for (auto _ : state) {
    char key[32];
    snprintf(key, sizeof(key), "key%08d",
             static_cast<int>(rng.Uniform(8192)));
    std::string value;
    bool tomb, found;
    if (!reader->Get(key,
                     binary ? store::SearchMode::kBinary
                            : store::SearchMode::kLinear,
                     &value, &tomb, &found)
             .ok()) {
      std::abort();
    }
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SSTableSearch)->Arg(0)->Arg(1)->ArgNames({"binary"});

void BM_LruCache(benchmark::State& state) {
  store::LruCache cache(64 << 20);
  Rng rng(6);
  std::vector<std::string> keys;
  for (int i = 0; i < 1024; ++i) {
    keys.push_back(RandomKey(rng, 16));
    cache.Put(keys.back(), PatternValue(i, 256), false);
  }
  size_t i = 0;
  std::string value;
  bool tomb;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Get(keys[i++ & 1023], &value, &tomb));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruCache);

void BM_Crc32c(benchmark::State& state) {
  const std::string data = PatternValue(7, 64 << 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Crc32c);

void BM_RingQueueHandoff(benchmark::State& state) {
  RingQueue<uint64_t> q(1024);
  for (auto _ : state) {
    q.TryPush(1);
    benchmark::DoNotOptimize(q.TryPop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingQueueHandoff);

}  // namespace
}  // namespace papyrus

BENCHMARK_MAIN();
