// Figure 7 — put throughput under relaxed vs sequential consistency, with
// and without the trailing barrier.
//
// Paper setup: 16 B keys, 128 KB values, rank sweep from 1 to multiples of
// a node, random keys (so puts mix local and remote).  Series: Rel, Seq
// (puts only) and Rel+B, Seq+B (including the barrier).
//
// Expected shape (§5.2):
//   * Rel ≫ Seq for raw puts: relaxed puts update memory only, sequential
//     remote puts pay a synchronous migration round trip each;
//   * with the barrier included the gap closes — and Seq+B can edge ahead,
//     because the relaxed barrier triggers the deferred all-to-all
//     migration burst that congests the fabric.
#include <cstdio>

#include "bench_util.h"

using namespace papyrus;
using namespace papyrus::bench;

namespace {

struct Series {
  double put_krps = 0;
  double put_barrier_krps = 0;
};

Series RunMode(const Flags& flags, int nranks, int mode, size_t vallen,
               int iters) {
  const std::string repo = "nvme:" + flags.repo + "/fig07";
  RankStats put_t, total_t;
  RunKvJob(nranks, /*ranks_per_node=*/2, repo, [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    BenchCheck(papyruskv_option_init(&opt), "papyruskv_option_init");
    opt.consistency = mode;
    papyruskv_db_t db;
    if (papyruskv_open("fig07", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR, &opt,
                       &db) != PAPYRUSKV_SUCCESS) {
      throw std::runtime_error("open failed");
    }
    const auto keys = MakeKeys(ctx.rank, static_cast<size_t>(iters),
                               flags.keylen);
    const std::string& value = ValueBlob(vallen);

    Stopwatch sw;
    for (const auto& k : keys) {
      BenchCheck(papyruskv_put(db, k.data(), k.size(), value.data(), value.size()), "papyruskv_put");
    }
    const double put_s = sw.ElapsedSeconds();
    BenchCheck(papyruskv_barrier(db, PAPYRUSKV_SSTABLE), "papyruskv_barrier");
    const double total_s = sw.ElapsedSeconds();

    put_t = GatherStats(ctx.comm, put_s);
    total_t = GatherStats(ctx.comm, total_s);
    BenchCheck(papyruskv_close(db), "papyruskv_close");
  });
  CleanupRepo(repo);
  const uint64_t total_ops =
      static_cast<uint64_t>(iters) * static_cast<uint64_t>(nranks);
  return Series{Krps(total_ops, put_t.max), Krps(total_ops, total_t.max)};
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  ApplyScale(flags, 10.0);  // modeled time must dominate 1-core CPU noise
  const int iters = flags.iters > 0 ? flags.iters : 48;
  const size_t vallen = flags.vallen > 0 ? flags.vallen : 128 * 1024;

  printf("Figure 7: relaxed vs sequential puts, value %s, %d ops/rank\n",
         HumanSize(vallen).c_str(), iters);

  Table table("Figure 7 — put throughput (KRPS) by consistency mode",
              {"ranks", "Rel", "Seq", "Rel+B", "Seq+B"});
  for (int nranks = 1; nranks <= flags.ranks; nranks *= 2) {
    const Series rel =
        RunMode(flags, nranks, PAPYRUSKV_RELAXED, vallen, iters);
    const Series seq =
        RunMode(flags, nranks, PAPYRUSKV_SEQUENTIAL, vallen, iters);
    table.AddRow({std::to_string(nranks), Table::Num(rel.put_krps, 2),
                  Table::Num(seq.put_krps, 2),
                  Table::Num(rel.put_barrier_krps, 2),
                  Table::Num(seq.put_barrier_krps, 2)});
  }
  table.Print();
  return 0;
}
