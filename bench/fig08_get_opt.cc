// Figure 8 — get-path optimizations: storage group (SG) and SSTable binary
// search (B).
//
// Paper setup: the `basic` app's get phase after data has been flushed to
// SSTables, in four configurations — Default (no sharing, linear SSData
// scan), Def+SG, Def+B, Def+SG+B — controlled by PAPYRUSKV_GROUP_SIZE and
// PAPYRUSKV_BIN_SEARCH in the artifact.
//
// Expected shape (§5.2): both techniques help; the combination is best.
// Binary search is the bigger lever (O(log n) random reads instead of a
// sequential scan); the storage group removes the value transfer for
// remote keys owned by co-located ranks.
#include <cstdio>

#include "bench_util.h"

using namespace papyrus;
using namespace papyrus::bench;

namespace {

double RunConfig(const Flags& flags, int nranks, bool storage_group,
                 bool bin_search, size_t vallen, int iters) {
  const std::string repo = "nvme:" + flags.repo + "/fig08";
  // group_size=1 disables sharing (every rank its own group), like the
  // artifact's PAPYRUSKV_GROUP_SIZE=1.
  setenv("PAPYRUSKV_GROUP_SIZE", storage_group ? "4" : "1", 1);
  RankStats get_t;
  RunKvJob(nranks, /*ranks_per_node=*/4, repo, [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    BenchCheck(papyruskv_option_init(&opt), "papyruskv_option_init");
    opt.bin_search = bin_search ? 1 : 0;
    opt.memtable_size = 256 * 1024;  // ensure data reaches SSTables
    opt.cache_local = 0;             // measure the SSTable path itself
    papyruskv_db_t db;
    if (papyruskv_open("fig08", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR, &opt,
                       &db) != PAPYRUSKV_SUCCESS) {
      throw std::runtime_error("open failed");
    }
    const BasicResult r = RunBasic(db, ctx.rank, flags.keylen, vallen, iters);
    get_t = GatherStats(ctx.comm, r.get_seconds);
    BenchCheck(papyruskv_close(db), "papyruskv_close");
  });
  unsetenv("PAPYRUSKV_GROUP_SIZE");
  CleanupRepo(repo);
  const uint64_t total_ops =
      static_cast<uint64_t>(iters) * static_cast<uint64_t>(nranks);
  return Krps(total_ops, get_t.max);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  ApplyScale(flags, 10.0);
  const int iters = flags.iters > 0 ? flags.iters : 64;
  const size_t vallen = flags.vallen > 0 ? flags.vallen : 128 * 1024;

  printf("Figure 8: get optimizations, value %s, %d ops/rank\n",
         HumanSize(vallen).c_str(), iters);

  Table table("Figure 8 — get throughput (KRPS): storage group & binary "
              "search",
              {"ranks", "Def", "Def+SG", "Def+B", "Def+SG+B"});
  for (int nranks = 2; nranks <= flags.ranks; nranks *= 2) {
    table.AddRow(
        {std::to_string(nranks),
         Table::Num(RunConfig(flags, nranks, false, false, vallen, iters), 2),
         Table::Num(RunConfig(flags, nranks, true, false, vallen, iters), 2),
         Table::Num(RunConfig(flags, nranks, false, true, vallen, iters), 2),
         Table::Num(RunConfig(flags, nranks, true, true, vallen, iters), 2)});
  }
  table.Print();
  return 0;
}
