// Figure 10 — checkpoint, restart, and restart with redistribution.
//
// Paper setup: the `cr` app — N puts of 128 KB values, then (1) a
// checkpoint to Lustre, (2) a restart from that snapshot, (3) a restart
// with PAPYRUSKV_FORCE_REDISTRIBUTE=1, across a rank sweep.  Reported:
// total times and bandwidths.
//
// Expected shape (§5.2): checkpoint and restart track the NVM↔Lustre
// parallel copy bandwidth (growing with ranks until the striped target
// saturates); redistribution costs extra — it replays every pair through
// the put path instead of copying files.
#include <cstdio>

#include "bench_util.h"

using namespace papyrus;
using namespace papyrus::bench;

namespace {

struct CrTimes {
  double ckpt = 0, restart = 0, restart_rd = 0;
  uint64_t bytes = 0;  // snapshot payload
};

CrTimes RunCr(const Flags& flags, int nranks, size_t vallen, int iters) {
  const std::string repo = "nvme:" + flags.repo + "/fig10_nvm";
  const std::string lustre = "lustre:" + flags.repo + "/fig10_lustre";
  CleanupRepo(lustre);
  CrTimes out;
  out.bytes = static_cast<uint64_t>(iters) * vallen *
              static_cast<uint64_t>(nranks);

  RankStats ckpt_t, restart_t, rd_t;
  RunKvJob(nranks, /*ranks_per_node=*/4, repo, [&](net::RankContext& ctx) {
    papyruskv_db_t db;
    if (papyruskv_open("cr", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR, nullptr,
                       &db) != PAPYRUSKV_SUCCESS) {
      throw std::runtime_error("open failed");
    }
    const auto keys = MakeKeys(ctx.rank, static_cast<size_t>(iters),
                               flags.keylen);
    const std::string& value = ValueBlob(vallen);
    for (const auto& k : keys) {
      BenchCheck(papyruskv_put(db, k.data(), k.size(), value.data(), value.size()), "papyruskv_put");
    }

    // Checkpoint.
    Stopwatch sw;
    papyruskv_event_t ev;
    if (papyruskv_checkpoint(db, lustre.c_str(), &ev) != PAPYRUSKV_SUCCESS ||
        papyruskv_wait(db, ev) != PAPYRUSKV_SUCCESS) {
      throw std::runtime_error("checkpoint failed");
    }
    ckpt_t = GatherStats(ctx.comm, sw.ElapsedSeconds());
    BenchCheck(papyruskv_destroy(db, nullptr), "papyruskv_destroy");

    // Restart (same rank count → file copy path).
    sw.Reset();
    papyruskv_db_t db2;
    if (papyruskv_restart(lustre.c_str(), "cr", PAPYRUSKV_RDWR, nullptr,
                          &db2, &ev) != PAPYRUSKV_SUCCESS ||
        papyruskv_wait(db2, ev) != PAPYRUSKV_SUCCESS) {
      throw std::runtime_error("restart failed");
    }
    restart_t = GatherStats(ctx.comm, sw.ElapsedSeconds());
    BenchCheck(papyruskv_destroy(db2, nullptr), "papyruskv_destroy");

    // Restart with forced redistribution (the paper forces it even though
    // the rank count matches).
    setenv("PAPYRUSKV_FORCE_REDISTRIBUTE", "1", 1);
    sw.Reset();
    papyruskv_db_t db3;
    if (papyruskv_restart(lustre.c_str(), "cr", PAPYRUSKV_RDWR, nullptr,
                          &db3, &ev) != PAPYRUSKV_SUCCESS ||
        papyruskv_wait(db3, ev) != PAPYRUSKV_SUCCESS) {
      throw std::runtime_error("restart-rd failed");
    }
    rd_t = GatherStats(ctx.comm, sw.ElapsedSeconds());
    unsetenv("PAPYRUSKV_FORCE_REDISTRIBUTE");
    BenchCheck(papyruskv_destroy(db3, nullptr), "papyruskv_destroy");
  });
  CleanupRepo(repo);
  CleanupRepo(lustre);
  out.ckpt = ckpt_t.max;
  out.restart = restart_t.max;
  out.restart_rd = rd_t.max;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  ApplyScale(flags, 10.0);
  const int iters = flags.iters > 0 ? flags.iters : 24;
  const size_t vallen = flags.vallen > 0 ? flags.vallen : 128 * 1024;

  printf("Figure 10: checkpoint/restart, value %s, %d ops/rank\n",
         HumanSize(vallen).c_str(), iters);

  Table table("Figure 10 — checkpoint / restart / restart+redistribution",
              {"ranks", "ckpt s", "ckpt MBPS", "restart s", "restart MBPS",
               "restart-RD s", "RD MBPS"});
  for (int nranks = 2; nranks <= flags.ranks; nranks *= 2) {
    const CrTimes t = RunCr(flags, nranks, vallen, iters);
    table.AddRow({std::to_string(nranks), Table::Num(t.ckpt, 3),
                  Table::Num(Mbps(t.bytes, t.ckpt)),
                  Table::Num(t.restart, 3),
                  Table::Num(Mbps(t.bytes, t.restart)),
                  Table::Num(t.restart_rd, 3),
                  Table::Num(Mbps(t.bytes, t.restart_rd))});
  }
  table.Print();
  return 0;
}
