// repl_failover — put throughput across a kill-and-promote cycle
// (DESIGN.md §12), measured by the timeline sampler (DESIGN.md §13).
//
// Three ranks with k=2 intra-group replication stream puts over the whole
// key space in fixed windows.  Midway, rank 2 is fail-stopped via the
// rank.crash failpoint; the survivors keep writing.  The first post-crash
// op against each dead hash slot pays the (tight) timeout ladder plus the
// election that promotes rank 2's follower, after which the promoted-owner
// cache routes at full speed — so the expected shape is a bounded dip,
// not a collapse.
//
// Instead of hand-rolled stopwatch windows, the bench runs with
// PAPYRUSKV_TIMELINE_MS=20 and derives everything from the sampler: each
// rank allgathers its timeline-v1 JSON, rank 0 merges the series onto the
// shared steady clock (the same path papyrus_inspect --timeline takes) and
// reads before/dip/after off the merged per-window put-rate series.  The
// merged series lands in BENCH_repl_failover.json as bench.tl.w* gauges
// next to the before/dip/after aggregate, so the whole failover shape is
// part of the committed results trajectory.
//
//   repl_failover [--ranks=N] [--iters=N(puts/rank/window)] [--vallen=N]
//                 [--repo=PATH]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "benchlib/flags.h"
#include "benchlib/report.h"
#include "core/papyruskv.h"
#include "core/runtime.h"
#include "fault/failpoint.h"
#include "net/runtime.h"
#include "obs/metrics.h"
#include "obs/timeline.h"

using namespace papyrus;
using namespace papyrus::bench;

namespace {

constexpr int kWindows = 6;
constexpr int kCrashAfter = 2;  // windows completed before rank 2 dies

// Reads the failover shape off the merged per-window put-rate series:
// the dip is the slowest non-empty interior window, "before" the fastest
// window preceding it, "after" the fastest one following it.  Empty edge
// windows (grid slots before the first / after the last sample) are
// ignored.  Returns false when the series is too short to bracket a dip.
bool FailoverShape(const std::vector<double>& ops, double* before,
                   double* dip, double* after) {
  size_t lo = 0, hi = ops.size();
  while (lo < hi && ops[lo] <= 0) ++lo;
  while (hi > lo && ops[hi - 1] <= 0) --hi;
  if (hi - lo < 3) return false;
  size_t dip_w = lo + 1;
  for (size_t w = lo + 1; w + 1 < hi; ++w) {
    if (ops[w] < ops[dip_w]) dip_w = w;
  }
  *before = 0;
  for (size_t w = lo; w < dip_w; ++w) {
    if (ops[w] > *before) *before = ops[w];
  }
  *dip = ops[dip_w];
  *after = 0;
  for (size_t w = dip_w + 1; w < hi; ++w) {
    if (ops[w] > *after) *after = ops[w];
  }
  return *before > 0 && *after > 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.ranks <= 0) flags.ranks = 3;
  const int iters = flags.iters > 0 ? flags.iters : 500;
  const size_t vallen = flags.vallen > 0 ? flags.vallen : 100;
  const std::string repo = "nvme:" + flags.repo + "/repl_failover";
  ApplyScale(flags, 0);  // software cost only, like micro_kv
  const int victim = flags.ranks - 1;

  // k=2 replication with a tight retry ladder: the bench measures the
  // failover dip, and that dip is (timeouts x retries) + election, so the
  // knobs are part of the experiment's definition, not tuning noise.
  // The timeout is overridable (overwrite=0): at higher rank counts on a
  // starved host the promoted rank serves two partitions, and 50ms can sit
  // below its loaded service time — every request then times out, retries,
  // and adds more load (a livelock, not a dip).
  setenv("PAPYRUSKV_REPLICAS", "2", 1);
  setenv("PAPYRUSKV_TIMEOUT_MS", "50", 0);
  setenv("PAPYRUSKV_RETRY_MAX", "2", 0);
  // The sampler IS the measurement: 20ms windows resolve a dip whose
  // floor is one 50ms timeout ladder.
  setenv("PAPYRUSKV_TIMELINE_MS", "20", 1);

  printf("repl_failover: %d ranks (k=2), %d windows x %d puts/rank, "
         "rank %d dies after window %d, 20ms sampler\n",
         flags.ranks, kWindows, iters, victim, kCrashAfter);

  std::string rendered;  // rank 0's merged-lane tables, printed post-job
  RunKvJob(flags.ranks, /*ranks_per_node=*/flags.ranks, repo,
           [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    BenchCheck(papyruskv_option_init(&opt), "papyruskv_option_init");
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    opt.memtable_size = static_cast<size_t>(kWindows) *
                        static_cast<size_t>(iters + 1024) * (vallen + 64);
    papyruskv_db_t db;
    BenchCheck(papyruskv_open("replbench", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR,
                              &opt, &db),
               "papyruskv_open");
    const std::string& value = ValueBlob(vallen);

    bool dead = false;
    for (int w = 0; w < kWindows; ++w) {
      ctx.comm.Barrier();
      if (w == kCrashAfter && ctx.rank == 0) {
        const std::string spec =
            "rank.crash=rank" + std::to_string(victim) + "@op1";
        if (!fault::Registry::Instance().Configure(spec, 1234).ok()) {
          throw std::runtime_error("failed to arm " + spec);
        }
      }
      ctx.comm.Barrier();

      if (!dead) {
        for (int i = 0; i < iters; ++i) {
          const std::string k = "w" + std::to_string(w) + "/r" +
                                std::to_string(ctx.rank) + "." +
                                std::to_string(i);
          const int rc = papyruskv_put(db, k.data(), k.size(), value.data(),
                                       value.size());
          if (rc != PAPYRUSKV_SUCCESS) {
            // Only the victim may fail, and only at its injected crash; a
            // survivor's put rides detection -> promotion -> retry inside
            // the call and must come back SUCCESS.
            if (ctx.rank != victim) BenchCheck(rc, "papyruskv_put");
            dead = true;
            break;
          }
        }
      }
    }

    // Every rank (the dead one included — its sampler kept ticking)
    // contributes its series; rank 0 merges them on the shared clock.
    const std::string mine = core::KvRuntime::Current()->TimelineJson();
    std::vector<std::string> all;
    ctx.comm.Allgather(Slice(mine), &all);
    if (ctx.rank == 0) {
      std::vector<obs::TimelineDoc> docs;
      for (const std::string& text : all) {
        obs::TimelineDoc doc;
        if (obs::ParseTimelineJson(text, &doc)) docs.push_back(std::move(doc));
      }
      const obs::MergedTimeline merged = obs::MergeTimelines(docs);
      rendered = obs::RenderTimelineTables(merged);
      const std::vector<double> ops = obs::WindowOpsPerSec(merged);
      double before = 0, dip = 0, after = 0;
      if (!FailoverShape(ops, &before, &dip, &after)) {
        fprintf(stderr,
                "repl_failover: merged series too short for a dip "
                "(%zu windows) — is the sampler on?\n", ops.size());
      }
      auto& reg = core::KvRuntime::Current()->metrics();
      reg.GetGauge("bench.before_krps").Set(static_cast<int64_t>(before / 1e3));
      reg.GetGauge("bench.dip_krps").Set(static_cast<int64_t>(dip / 1e3));
      reg.GetGauge("bench.after_krps").Set(static_cast<int64_t>(after / 1e3));
      reg.GetGauge("bench.after_vs_before_x100")
          .Set(static_cast<int64_t>(before > 0 ? after / before * 100 : 0));
      reg.GetGauge("bench.tl.window_us")
          .Set(static_cast<int64_t>(merged.window_us));
      for (size_t w = 0; w < ops.size(); ++w) {
        char name[32];
        snprintf(name, sizeof(name), "bench.tl.w%02zu_ops", w);
        reg.GetGauge(name).Set(static_cast<int64_t>(ops[w]));
      }
    }
    WriteBenchMetrics(ctx.comm, "repl_failover");
    BenchCheck(papyruskv_close(db), "papyruskv_close");
  });

  fputs(rendered.c_str(), stdout);
  CleanupRepo(repo);
  return 0;
}
