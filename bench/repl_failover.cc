// repl_failover — put throughput across a kill-and-promote cycle
// (DESIGN.md §12).
//
// Three ranks with k=2 intra-group replication stream puts over the whole
// key space in fixed windows.  Midway, rank 2 is fail-stopped via the
// rank.crash failpoint; the survivors keep writing.  The first post-crash
// op against each dead hash slot pays the (tight) timeout ladder plus the
// election that promotes rank 2's follower, after which the promoted-owner
// cache routes at full speed — so the expected shape is a bounded one-
// window dip, not a collapse.
//
// Rank 0's window throughputs and the before/dip/after aggregate land in
// BENCH_repl_failover.json as bench.* gauges, so failover cost is part of
// the committed results trajectory.
//
//   repl_failover [--ranks=N] [--iters=N(puts/rank/window)] [--vallen=N]
//                 [--repo=PATH]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "benchlib/flags.h"
#include "benchlib/report.h"
#include "common/timer.h"
#include "core/papyruskv.h"
#include "core/runtime.h"
#include "fault/failpoint.h"
#include "net/runtime.h"
#include "obs/metrics.h"

using namespace papyrus;
using namespace papyrus::bench;

namespace {

constexpr int kWindows = 6;
constexpr int kCrashAfter = 2;  // windows completed before rank 2 dies

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.ranks <= 0) flags.ranks = 3;
  const int iters = flags.iters > 0 ? flags.iters : 500;
  const size_t vallen = flags.vallen > 0 ? flags.vallen : 100;
  const std::string repo = "nvme:" + flags.repo + "/repl_failover";
  ApplyScale(flags, 0);  // software cost only, like micro_kv
  const int victim = flags.ranks - 1;

  // k=2 replication with a tight retry ladder: the bench measures the
  // failover dip, and that dip is (timeouts x retries) + election, so the
  // knobs are part of the experiment's definition, not tuning noise.
  setenv("PAPYRUSKV_REPLICAS", "2", 1);
  setenv("PAPYRUSKV_TIMEOUT_MS", "50", 1);
  setenv("PAPYRUSKV_RETRY_MAX", "2", 1);

  printf("repl_failover: %d ranks (k=2), %d windows x %d puts/rank, "
         "rank %d dies after window %d\n",
         flags.ranks, kWindows, iters, victim, kCrashAfter);

  std::vector<double> window_s(kWindows, 0);  // slowest SURVIVOR per window
  RunKvJob(flags.ranks, /*ranks_per_node=*/flags.ranks, repo,
           [&](net::RankContext& ctx) {
    papyruskv_option_t opt;
    BenchCheck(papyruskv_option_init(&opt), "papyruskv_option_init");
    opt.consistency = PAPYRUSKV_SEQUENTIAL;
    opt.memtable_size = static_cast<size_t>(kWindows) *
                        static_cast<size_t>(iters + 1024) * (vallen + 64);
    papyruskv_db_t db;
    BenchCheck(papyruskv_open("replbench", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR,
                              &opt, &db),
               "papyruskv_open");
    const std::string& value = ValueBlob(vallen);

    bool dead = false;
    for (int w = 0; w < kWindows; ++w) {
      ctx.comm.Barrier();
      if (w == kCrashAfter && ctx.rank == 0) {
        const std::string spec =
            "rank.crash=rank" + std::to_string(victim) + "@op1";
        if (!fault::Registry::Instance().Configure(spec, 1234).ok()) {
          throw std::runtime_error("failed to arm " + spec);
        }
      }
      ctx.comm.Barrier();

      Stopwatch sw;
      if (!dead) {
        for (int i = 0; i < iters; ++i) {
          const std::string k = "w" + std::to_string(w) + "/r" +
                                std::to_string(ctx.rank) + "." +
                                std::to_string(i);
          const int rc = papyruskv_put(db, k.data(), k.size(), value.data(),
                                       value.size());
          if (rc != PAPYRUSKV_SUCCESS) {
            // Only the victim may fail, and only at its injected crash; a
            // survivor's put rides detection -> promotion -> retry inside
            // the call and must come back SUCCESS.
            if (ctx.rank != victim) BenchCheck(rc, "papyruskv_put");
            dead = true;
            break;
          }
        }
      }
      const double mine = dead ? 0 : sw.ElapsedSeconds();
      // The dead rank reports 0 and sits out; max = slowest survivor.
      const RankStats t = GatherStats(ctx.comm, mine);
      if (ctx.rank == 0) window_s[w] = t.max;
    }

    if (ctx.rank == 0) {
      const uint64_t per_window =
          static_cast<uint64_t>(iters) * flags.ranks;
      const uint64_t survivors_window =
          static_cast<uint64_t>(iters) * (flags.ranks - 1);
      const double before = Krps(per_window, window_s[0]);
      const double dip = Krps(survivors_window, window_s[kCrashAfter]);
      const double after = Krps(survivors_window, window_s[kWindows - 1]);
      auto& reg = papyrus::core::KvRuntime::Current()->metrics();
      reg.GetGauge("bench.before_krps").Set(static_cast<int64_t>(before));
      reg.GetGauge("bench.dip_krps").Set(static_cast<int64_t>(dip));
      reg.GetGauge("bench.after_krps").Set(static_cast<int64_t>(after));
      reg.GetGauge("bench.after_vs_before_x100")
          .Set(static_cast<int64_t>(before > 0 ? after / before * 100 : 0));
    }
    WriteBenchMetrics(ctx.comm, "repl_failover");
    BenchCheck(papyruskv_close(db), "papyruskv_close");
  });

  const uint64_t per_window = static_cast<uint64_t>(iters) * flags.ranks;
  const uint64_t survivors_window =
      static_cast<uint64_t>(iters) * (flags.ranks - 1);
  Table t("repl_failover put throughput (k=2)",
          {"window", "phase", "KRPS", "us/op (max rank)"});
  for (int w = 0; w < kWindows; ++w) {
    const bool post = w >= kCrashAfter;
    const uint64_t ops = post ? survivors_window : per_window;
    const char* phase = w < kCrashAfter    ? "healthy"
                        : w == kCrashAfter ? "crash+promote"
                                           : "promoted";
    t.AddRow({std::to_string(w), phase,
              Table::Num(Krps(ops, window_s[w]), 1),
              Table::Num(window_s[w] / iters * 1e6, 3)});
  }
  t.Print();
  CleanupRepo(repo);
  return 0;
}
