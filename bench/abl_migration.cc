// Ablation E9 — migration batching (DESIGN.md §5 items 2 and 4).
//
// The relaxed-mode advantage comes from batching remote puts in the remote
// MemTable and migrating them per owner in bulk (§2.4).  The batch
// granularity is the remote MemTable threshold.  This ablation sweeps it
// from "tiny" (≈ per-op messages — approaching sequential mode's behavior)
// to large, against a put-heavy all-remote workload, and reports put
// throughput, fence cost, and the message count that actually crossed the
// interconnect.
#include <cstdio>

#include "bench_util.h"
#include "core/db_shard.h"

using namespace papyrus;
using namespace papyrus::bench;

namespace {

void RunCase(const Flags& flags, const char* label, int mode,
             size_t memtable_bytes, size_t vallen, int iters, Table* table) {
  const std::string repo = "nvme:" + flags.repo + "/abl_mig";
  RankStats put_t, fence_t;
  uint64_t messages = 0;
  RunKvJob(flags.ranks, /*ranks_per_node=*/2, repo,
           [&](net::RankContext& ctx) {
             papyruskv_option_t opt;
             BenchCheck(papyruskv_option_init(&opt), "papyruskv_option_init");
             opt.consistency = mode;
             opt.memtable_size = memtable_bytes;
             papyruskv_db_t db;
             if (papyruskv_open("mig", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR,
                                &opt, &db) != PAPYRUSKV_SUCCESS) {
               throw std::runtime_error("open failed");
             }
             const uint64_t msgs_before = ctx.world->interconnect().messages();
             const auto keys = MakeKeys(ctx.rank,
                                        static_cast<size_t>(iters),
                                        flags.keylen);
             const std::string& value = ValueBlob(vallen);
             Stopwatch sw;
             for (const auto& k : keys) {
               BenchCheck(papyruskv_put(db, k.data(), k.size(), value.data(),
                             value.size()), "papyruskv_put");
             }
             const double put_s = sw.ElapsedSeconds();
             Stopwatch fence_sw;
             BenchCheck(papyruskv_fence(db), "papyruskv_fence");
             const double fence_s = fence_sw.ElapsedSeconds();
             put_t = GatherStats(ctx.comm, put_s);
             fence_t = GatherStats(ctx.comm, fence_s);
             ctx.comm.Barrier();
             if (ctx.rank == 0) {
               messages = ctx.world->interconnect().messages() - msgs_before;
             }
             BenchCheck(papyruskv_close(db), "papyruskv_close");
           });
  CleanupRepo(repo);
  const uint64_t total_ops =
      static_cast<uint64_t>(iters) * static_cast<uint64_t>(flags.ranks);
  table->AddRow({label, Table::Num(Krps(total_ops, put_t.max), 2),
                 Table::Num(fence_t.max * 1e3, 2), std::to_string(messages)});
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  ApplyScale(flags, 10.0);
  const int iters = flags.iters > 0 ? flags.iters : 128;
  const size_t vallen = flags.vallen > 0 ? flags.vallen : 16 * 1024;

  printf("Ablation: migration batching, %d ranks, %d puts/rank, value %s\n",
         flags.ranks, iters, HumanSize(vallen).c_str());

  Table table("Ablation E9 — batch granularity (remote MemTable threshold)",
              {"config", "put KRPS", "fence ms", "network msgs"});
  RunCase(flags, "sequential (per-op sync)", PAPYRUSKV_SEQUENTIAL, 4 << 20,
          vallen, iters, &table);
  RunCase(flags, "relaxed, memtable 32K", PAPYRUSKV_RELAXED, 32 << 10,
          vallen, iters, &table);
  RunCase(flags, "relaxed, memtable 256K", PAPYRUSKV_RELAXED, 256 << 10,
          vallen, iters, &table);
  RunCase(flags, "relaxed, memtable 2M", PAPYRUSKV_RELAXED, 2 << 20, vallen,
          iters, &table);
  RunCase(flags, "relaxed, memtable 16M (one batch)", PAPYRUSKV_RELAXED,
          16 << 20, vallen, iters, &table);
  table.Print();
  return 0;
}
