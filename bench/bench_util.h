// Shared plumbing for the figure benches: job launch bracketed by
// papyruskv_init/finalize, scratch-directory hygiene, and device time-scale
// setup.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>

#include "benchlib/flags.h"
#include "benchlib/report.h"
#include "benchlib/workload.h"
#include "core/layout.h"
#include "core/papyruskv.h"
#include "net/runtime.h"
#include "sim/device_model.h"
#include "common/timer.h"
#include "common/random.h"
#include "sim/storage.h"

namespace papyrus::bench {

// Aborts the bench on an unexpected error code: a bench that silently
// measures failed operations produces numbers that mean nothing.
inline void BenchCheck(int rc, const char* what) {
  if (rc != PAPYRUSKV_SUCCESS) {
    throw std::runtime_error(std::string(what) + ": " + ErrorName(rc));
  }
}

// Runs `fn` on an emulated job of `nranks` ranks (ranks_per_node per node)
// with PapyrusKV initialized on repository `repo_spec` ("nvme:/path" etc.).
// The repository directory is wiped before the job so runs are independent.
inline void RunKvJob(int nranks, int ranks_per_node,
                     const std::string& repo_spec,
                     const std::function<void(net::RankContext&)>& fn) {
  sim::DeviceClass cls;
  std::string root;
  core::ParseRepositorySpec(repo_spec, &cls, &root);
  // Best-effort wipe; a stale directory only means the run is not fresh.
  sim::Storage::RemoveDirRecursive(root).IgnoreError();

  sim::Topology topo;
  topo.nranks = nranks;
  topo.ranks_per_node = ranks_per_node > 0 ? ranks_per_node : nranks;
  net::RunRanks(topo, [&](net::RankContext& ctx) {
    int rc = papyruskv_init(nullptr, nullptr, repo_spec.c_str());
    if (rc != PAPYRUSKV_SUCCESS) {
      throw std::runtime_error(std::string("papyruskv_init: ") +
                               ErrorName(rc));
    }
    fn(ctx);
    rc = papyruskv_finalize();
    if (rc != PAPYRUSKV_SUCCESS) {
      throw std::runtime_error(std::string("papyruskv_finalize: ") +
                               ErrorName(rc));
    }
  });
}

// Wipes the scratch root after a sweep (keeps disk use bounded).
inline void CleanupRepo(const std::string& repo_spec) {
  sim::DeviceClass cls;
  std::string root;
  core::ParseRepositorySpec(repo_spec, &cls, &root);
  sim::Storage::RemoveDirRecursive(root).IgnoreError();
}

inline void ApplyScale(const Flags& flags, double bench_default) {
  sim::SetTimeScale(flags.scale >= 0 ? flags.scale : bench_default);
}

}  // namespace papyrus::bench
