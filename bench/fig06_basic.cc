// Figure 6 — basic operation performance (put / barrier / get) per storage
// type, single node.
//
// Paper setup: one node, ranks = physical cores (20/68/32); each rank runs
// the `basic` app — N puts of 16 B keys with values 256 B…1 MB, a
// barrier(PAPYRUSKV_SSTABLE), then N gets — against the node-local NVM and
// against Lustre.  Metrics: KRPS for small values, MBPS for large.
//
// Reproduction: one emulated node, four storage models.  Expected shape
// (paper §5.2):
//   * put throughput is storage-independent (memory only; flushing hidden);
//   * barrier (flush) bandwidth: local NVM wins at small values, the
//     striped targets (Lustre, burst buffer) catch up or win at large
//     values;
//   * get: local NVM beats Lustre by orders of magnitude (random reads).
#include <cstdio>

#include "bench_util.h"

using namespace papyrus;
using namespace papyrus::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  ApplyScale(flags, 10.0);
  const int iters = flags.iters > 0 ? flags.iters : 24;
  const size_t vallens[] = {256, 4096, 65536, 262144, 1048576};
  const char* storages[] = {"nvme", "ssd", "bb", "lustre"};

  printf("Figure 6: basic ops, %d ranks (1 node), %d ops/rank, key %zuB\n",
         flags.ranks, iters, flags.keylen);

  Table table("Figure 6 — put / barrier(SSTABLE) / get by storage",
              {"storage", "vallen", "put KRPS", "put MBPS", "barrier MBPS",
               "get KRPS", "get MBPS"});

  for (const char* storage : storages) {
    for (size_t vallen : vallens) {
      const std::string repo =
          std::string(storage) + ":" + flags.repo + "/fig06_" + storage;
      BasicResult local{};
      RankStats put_t, bar_t, get_t;
      RunKvJob(flags.ranks, flags.ranks, repo, [&](net::RankContext& ctx) {
        papyruskv_db_t db;
        papyruskv_option_t opt;
        BenchCheck(papyruskv_option_init(&opt), "papyruskv_option_init");
        opt.consistency = PAPYRUSKV_RELAXED;  // the paper's Fig. 6 mode
        if (papyruskv_open("fig06", PAPYRUSKV_CREATE | PAPYRUSKV_RDWR, &opt,
                           &db) != PAPYRUSKV_SUCCESS) {
          throw std::runtime_error("open failed");
        }
        const BasicResult r =
            RunBasic(db, ctx.rank, flags.keylen, vallen, iters);
        put_t = GatherStats(ctx.comm, r.put_seconds);
        bar_t = GatherStats(ctx.comm, r.barrier_seconds);
        get_t = GatherStats(ctx.comm, r.get_seconds);
        if (ctx.rank == 0) local = r;
        WriteBenchMetrics(ctx.comm, "fig06_basic");
        BenchCheck(papyruskv_close(db), "papyruskv_close");
      });
      const uint64_t total_ops =
          static_cast<uint64_t>(iters) * static_cast<uint64_t>(flags.ranks);
      const uint64_t total_bytes = total_ops * vallen;
      table.AddRow({storage, HumanSize(vallen),
                    Table::Num(Krps(total_ops, put_t.max)),
                    Table::Num(Mbps(total_bytes, put_t.max)),
                    Table::Num(Mbps(total_bytes, bar_t.max)),
                    Table::Num(Krps(total_ops, get_t.max)),
                    Table::Num(Mbps(total_bytes, get_t.max))});
      CleanupRepo(repo);
    }
  }
  table.Print();
  return 0;
}
