// Figure 13 — Meraculous (de novo assembly) on PapyrusKV vs UPC.
//
// Paper setup: the Meraculous de Bruijn construction + traversal on the
// human chr14 dataset, UPC threads 32…512, comparing the PapyrusKV port
// against the original UPC distributed hash table.
//
// Reproduction: a synthetic UFX dataset with the same structure (see
// src/apps/genome.h), the identical assembler algorithm on both substrates
// (src/apps/meraculous.h), a scaled-down rank sweep.  Both outputs are
// verified against the generator's ground-truth contigs every run.
//
// Expected shape (§5.2): UPC wins — its one-sided gets avoid the KVS
// machinery — but the gap narrows as ranks grow; the PapyrusKV
// construction phase is competitive thanks to relaxed-mode migration
// batching, while its traversal pays per-lookup KVS overhead.
#include <cstdio>

#include "apps/meraculous.h"
#include "bench_util.h"

using namespace papyrus;
using namespace papyrus::bench;
using namespace papyrus::apps;

namespace {

struct AppTimes {
  double construct = 0;
  double traverse = 0;
  bool verified = false;
};

AppTimes RunBackend(const Flags& flags, int nranks,
                    const SyntheticGenome& genome, bool use_papyrus) {
  const std::string repo = "nvme:" + flags.repo + "/fig13";
  AppTimes out;
  RankStats con_t, tra_t;
  bool ok = true;

  auto body = [&](net::RankContext& ctx) {
    std::unique_ptr<KmerStore> store;
    if (use_papyrus) {
      std::unique_ptr<PapyrusKmerStore> s;
      if (!PapyrusKmerStore::Open("kmers", &s).ok()) {
        throw std::runtime_error("kmer db open failed");
      }
      store = std::move(s);
    } else {
      std::unique_ptr<DsmKmerStore> s;
      if (!DsmKmerStore::Open(ctx, &s).ok()) {
        throw std::runtime_error("dsm open failed");
      }
      store = std::move(s);
    }
    AssemblyResult r;
    Status s = AssembleRank(ctx, *store, genome, &r);
    if (!s.ok()) throw std::runtime_error("assembly: " + s.ToString());
    con_t = GatherStats(ctx.comm, r.construct_seconds);
    tra_t = GatherStats(ctx.comm, r.traverse_seconds);
    if (!VerifyAssembly(ctx, genome, r.contigs)) ok = false;
  };

  if (use_papyrus) {
    RunKvJob(nranks, /*ranks_per_node=*/4, repo, body);
    CleanupRepo(repo);
  } else {
    sim::Topology topo;
    topo.nranks = nranks;
    topo.ranks_per_node = 4;
    net::RunRanks(topo, body);
  }
  out.construct = con_t.max;
  out.traverse = tra_t.max;
  out.verified = ok;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  ApplyScale(flags, 10.0);

  GenomeSpec spec;
  spec.k = 21;
  spec.contigs = 24;
  spec.contig_len = flags.iters > 0 ? flags.iters : 1200;
  spec.seed = 42;
  const SyntheticGenome genome = GenerateGenome(spec);
  uint64_t bases = 0;
  for (const auto& s : genome.segments) bases += s.size();
  printf("Figure 13: Meraculous, synthetic genome: %zu contigs, %llu bases, "
         "%zu k-mers (k=%d)\n",
         genome.segments.size(), static_cast<unsigned long long>(bases),
         genome.ufx.size(), spec.k);

  Table table("Figure 13 — Meraculous total time (s), PapyrusKV vs UPC-DSM",
              {"ranks", "PKV total", "PKV constr", "PKV trav", "UPC total",
               "UPC constr", "UPC trav", "verified"});
  for (int nranks = 2; nranks <= flags.ranks; nranks *= 2) {
    const AppTimes pkv = RunBackend(flags, nranks, genome, true);
    const AppTimes upc = RunBackend(flags, nranks, genome, false);
    table.AddRow({std::to_string(nranks),
                  Table::Num(pkv.construct + pkv.traverse, 3),
                  Table::Num(pkv.construct, 3), Table::Num(pkv.traverse, 3),
                  Table::Num(upc.construct + upc.traverse, 3),
                  Table::Num(upc.construct, 3), Table::Num(upc.traverse, 3),
                  (pkv.verified && upc.verified) ? "yes" : "NO"});
  }
  table.Print();
  return 0;
}
